// Package xseek infers what a keyword query should *return* (slides
// 51-52): XSeek's node classification into entities, attributes and
// connection nodes, the split of query keywords into predicates and
// explicit return labels (Liu & Chen SIGMOD'07), and Précis-style weighted
// path expansion that bounds which attributes join a result schema
// (Koutrika et al. ICDE'06).
package xseek

import (
	"sort"

	"kwsearch/internal/schemagraph"
	"kwsearch/internal/text"
	"kwsearch/internal/xmltree"
)

// Category classifies a node type per XSeek's data-semantics analysis.
type Category int

const (
	// Connection nodes neither repeat nor carry values (pure structure).
	Connection Category = iota
	// Entity node types appear multiple times under one parent instance
	// (the "*-node" star pattern of a DTD).
	Entity
	// Attribute node types occur at most once per parent and hold a value.
	Attribute
)

// String names the category for diagnostics and test output.
func (c Category) String() string {
	switch c {
	case Entity:
		return "entity"
	case Attribute:
		return "attribute"
	default:
		return "connection"
	}
}

// Classify assigns a category to every label path of the tree: a path is an
// Entity if some parent instance has two or more children on it, an
// Attribute if it is single-valued per parent and leaf-valued, and a
// Connection node otherwise.
func Classify(t *xmltree.Tree) map[string]Category {
	repeats := map[string]bool{}
	hasValueLeaf := map[string]bool{}
	seenPath := map[string]bool{}
	for _, n := range t.Nodes() {
		counts := map[string]int{}
		for _, c := range n.Children {
			counts[c.Label]++
		}
		for label, cnt := range counts {
			path := n.LabelPath() + "/" + label
			if cnt > 1 {
				repeats[path] = true
			}
		}
	}
	for _, n := range t.Nodes() {
		p := n.LabelPath()
		seenPath[p] = true
		if n.IsLeaf() && n.Value != "" {
			hasValueLeaf[p] = true
		}
	}
	out := make(map[string]Category, len(seenPath))
	for p := range seenPath {
		switch {
		case repeats[p]:
			out[p] = Entity
		case hasValueLeaf[p]:
			out[p] = Attribute
		default:
			out[p] = Connection
		}
	}
	return out
}

// QueryAnalysis splits keywords into structural return labels and value
// predicates (slide 51: keywords can specify predicates or return nodes).
type QueryAnalysis struct {
	// ReturnLabels are keywords that name a node label in the data
	// ("institution" in Q1 = "John, institution").
	ReturnLabels []string
	// Predicates are keywords that match node values ("John").
	Predicates []string
}

// AnalyzeQuery classifies each term: a term equal to some node label is an
// explicit return label; terms matching only values are predicates. A term
// doing both is treated as a return label (the XSeek precedence).
func AnalyzeQuery(t *xmltree.Tree, terms []string) QueryAnalysis {
	labels := map[string]bool{}
	for _, n := range t.Nodes() {
		labels[text.Normalize(n.Label)] = true
	}
	var qa QueryAnalysis
	for _, raw := range terms {
		term := text.Normalize(raw)
		if term == "" {
			continue
		}
		if labels[term] {
			qa.ReturnLabels = append(qa.ReturnLabels, term)
		} else {
			qa.Predicates = append(qa.Predicates, term)
		}
	}
	return qa
}

// ReturnNode describes one inferred output item for a result.
type ReturnNode struct {
	Node *xmltree.Node
	// Explicit is true when the node answers a return-label keyword,
	// false when it is the implicit master entity of the predicates.
	Explicit bool
}

// InferReturnNodes computes the return nodes for one query result rooted at
// result: explicit return-label matches inside the subtree, plus — when
// the query has value predicates — the nearest ancestor-or-self entity of
// the result root (the implicit "entity involved in the result",
// slide 51).
func InferReturnNodes(t *xmltree.Tree, cats map[string]Category, qa QueryAnalysis, result *xmltree.Node) []ReturnNode {
	var out []ReturnNode
	if len(qa.ReturnLabels) > 0 {
		want := map[string]bool{}
		for _, l := range qa.ReturnLabels {
			want[l] = true
		}
		for _, n := range xmltree.Subtree(result) {
			if want[text.Normalize(n.Label)] {
				out = append(out, ReturnNode{Node: n, Explicit: true})
			}
		}
	}
	if len(qa.Predicates) > 0 {
		// Nearest entity at or above the result root.
		for cur := result; cur != nil; cur = cur.Parent {
			if cats[cur.LabelPath()] == Entity {
				out = append(out, ReturnNode{Node: cur, Explicit: false})
				break
			}
			if cur.Parent == nil {
				// Fall back to the result root itself.
				out = append(out, ReturnNode{Node: result, Explicit: false})
			}
		}
	}
	return out
}

// PrecisSchema expands a result schema from rootTable over the weighted
// schema graph: a table joins the output schema when the maximum path
// weight (product of edge weights) from the root reaches it at or above
// minWeight, capped at maxTables tables (slide 52). The root is always
// included. Results are sorted by descending weight, ties by name.
func PrecisSchema(g *schemagraph.Graph, rootTable string, minWeight float64, maxTables int) []string {
	type wt struct {
		table  string
		weight float64
	}
	best := map[string]float64{rootTable: 1}
	// Dijkstra-style max-product search.
	frontier := []wt{{table: rootTable, weight: 1}}
	for len(frontier) > 0 {
		// Pop max weight.
		bi := 0
		for i := range frontier {
			if frontier[i].weight > frontier[bi].weight {
				bi = i
			}
		}
		cur := frontier[bi]
		frontier = append(frontier[:bi], frontier[bi+1:]...)
		if cur.weight < best[cur.table] {
			continue
		}
		for _, e := range g.Adjacent(cur.table) {
			other := e.To
			if other == cur.table {
				other = e.From
			}
			w := cur.weight * e.Weight
			if w < minWeight {
				continue
			}
			if old, ok := best[other]; !ok || w > old {
				best[other] = w
				frontier = append(frontier, wt{table: other, weight: w})
			}
		}
	}
	list := make([]wt, 0, len(best))
	for tb, w := range best {
		list = append(list, wt{table: tb, weight: w})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].weight != list[j].weight {
			return list[i].weight > list[j].weight
		}
		return list[i].table < list[j].table
	})
	if maxTables > 0 && len(list) > maxTables {
		list = list[:maxTables]
	}
	out := make([]string, len(list))
	for i, e := range list {
		out[i] = e.table
	}
	return out
}
