package xseek

import (
	"reflect"
	"testing"

	"kwsearch/internal/dataset"
	"kwsearch/internal/schemagraph"
	"kwsearch/internal/xmltree"
)

func scientistTree(t *testing.T) *xmltree.Tree {
	t.Helper()
	// The slide-6 structured document: scientists with name + publications.
	b := xmltree.NewBuilder("scientists")
	s1 := b.Child(b.Root(), "scientist", "")
	b.Child(s1, "name", "John")
	pubs := b.Child(s1, "publications", "")
	p1 := b.Child(pubs, "paper", "")
	b.Child(p1, "title", "cloud computing")
	p2 := b.Child(pubs, "paper", "")
	b.Child(p2, "title", "XML search")
	s2 := b.Child(b.Root(), "scientist", "")
	b.Child(s2, "name", "Mary")
	pubs2 := b.Child(s2, "publications", "")
	p3 := b.Child(pubs2, "paper", "")
	b.Child(p3, "title", "databases")
	b.Child(s2, "institution", "Univ of Toronto")
	return b.Freeze()
}

func TestClassify(t *testing.T) {
	tr := scientistTree(t)
	cats := Classify(tr)
	if cats["/scientists/scientist"] != Entity {
		t.Errorf("scientist = %v, want entity", cats["/scientists/scientist"])
	}
	if cats["/scientists/scientist/publications/paper"] != Entity {
		t.Errorf("paper = %v, want entity", cats["/scientists/scientist/publications/paper"])
	}
	if cats["/scientists/scientist/name"] != Attribute {
		t.Errorf("name = %v, want attribute", cats["/scientists/scientist/name"])
	}
	if cats["/scientists/scientist/publications"] != Connection {
		t.Errorf("publications = %v, want connection", cats["/scientists/scientist/publications"])
	}
	if Connection.String() != "connection" || Entity.String() != "entity" || Attribute.String() != "attribute" {
		t.Errorf("category names broken")
	}
}

// TestAnalyzeQuerySlide51: Q1 = "John, institution" has an explicit return
// label; Q2 = "John, Toronto" is all predicates.
func TestAnalyzeQuerySlide51(t *testing.T) {
	tr := scientistTree(t)
	qa := AnalyzeQuery(tr, []string{"John", "institution"})
	if !reflect.DeepEqual(qa.ReturnLabels, []string{"institution"}) {
		t.Errorf("return labels = %v", qa.ReturnLabels)
	}
	if !reflect.DeepEqual(qa.Predicates, []string{"john"}) {
		t.Errorf("predicates = %v", qa.Predicates)
	}
	qa2 := AnalyzeQuery(tr, []string{"John", "Toronto"})
	if len(qa2.ReturnLabels) != 0 || len(qa2.Predicates) != 2 {
		t.Errorf("Q2 analysis = %+v", qa2)
	}
}

func TestInferReturnNodes(t *testing.T) {
	tr := scientistTree(t)
	cats := Classify(tr)

	// Q = "Mary, institution": result rooted at scientist Mary; explicit
	// return node is her institution, implicit is the scientist entity.
	mary := tr.NodesByLabel("scientist")[1]
	qa := AnalyzeQuery(tr, []string{"Mary", "institution"})
	rns := InferReturnNodes(tr, cats, qa, mary)
	var explicitLabels, implicitLabels []string
	for _, rn := range rns {
		if rn.Explicit {
			explicitLabels = append(explicitLabels, rn.Node.Label)
		} else {
			implicitLabels = append(implicitLabels, rn.Node.Label)
		}
	}
	if !reflect.DeepEqual(explicitLabels, []string{"institution"}) {
		t.Errorf("explicit = %v", explicitLabels)
	}
	if !reflect.DeepEqual(implicitLabels, []string{"scientist"}) {
		t.Errorf("implicit = %v", implicitLabels)
	}
}

func TestInferReturnNodesClimbsToEntity(t *testing.T) {
	tr := scientistTree(t)
	cats := Classify(tr)
	// Result rooted at a title node: the implicit entity is the paper.
	title := tr.NodesByLabel("title")[0]
	qa := AnalyzeQuery(tr, []string{"cloud"})
	rns := InferReturnNodes(tr, cats, qa, title)
	if len(rns) != 1 || rns[0].Node.Label != "paper" || rns[0].Explicit {
		t.Fatalf("return nodes = %+v", rns)
	}
}

// TestPrecisSchemaSlide52 reproduces E6: with min weight 0.4, sponsor
// (path weight 0.36) is excluded from the person result schema.
func TestPrecisSchemaSlide52(t *testing.T) {
	g, err := schemagraph.New(
		[]string{"person", "review", "conference", "sponsor"},
		[]schemagraph.Edge{
			{From: "person", To: "review", Weight: 0.8},
			{From: "review", To: "conference", Weight: 0.9},
			{From: "conference", To: "sponsor", Weight: 0.5},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	got := PrecisSchema(g, "person", 0.4, 0)
	want := []string{"person", "review", "conference"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("schema = %v, want %v (sponsor pruned at 0.36 < 0.4)", got, want)
	}
	// Lowering the threshold admits sponsor.
	got = PrecisSchema(g, "person", 0.3, 0)
	if len(got) != 4 || got[3] != "sponsor" {
		t.Errorf("schema at 0.3 = %v", got)
	}
	// Table cap applies after ranking by weight.
	got = PrecisSchema(g, "person", 0.3, 2)
	if !reflect.DeepEqual(got, []string{"person", "review"}) {
		t.Errorf("capped schema = %v", got)
	}
}

func TestPrecisSchemaOnDBLP(t *testing.T) {
	db := dataset.WidomBib()
	g := schemagraph.FromDB(db)
	got := PrecisSchema(g, "author", 0.5, 0)
	// Unweighted edges (weight 1): everything reachable stays.
	if len(got) != 3 {
		t.Errorf("schema = %v", got)
	}
}
