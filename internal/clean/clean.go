// Package clean implements keyword query cleaning (slides 66-70): a noisy
// channel model with edit-distance confusion sets and dictionary priors,
// and the segmentation dynamic program of Pu & Yu (VLDB'08) in which every
// segment must be backed by co-occurring database content — which also
// yields XClean's guarantee (Lu et al. ICDE'11) that the cleaned query has
// non-empty results.
package clean

import (
	"math"
	"sort"
	"strings"

	"kwsearch/internal/invindex"
	"kwsearch/internal/text"
)

// Candidate is one dictionary replacement for a query token.
type Candidate struct {
	Term string
	// Edits is the edit distance from the observed token (0 = exact).
	Edits int
	// Score combines the error model and the term prior.
	Score float64
}

// Cleaner cleans keyword queries against the vocabulary of an inverted
// index.
type Cleaner struct {
	ix *invindex.Index
	// MaxEdits bounds the confusion set (default 2).
	MaxEdits int
	// Lambda is the per-edit penalty of the error model: P(q|c) ∝ e^(-λ·d).
	Lambda float64
	// PrefixBonus treats dictionary terms extending the token as one edit
	// per missing run ("conf" -> "conference"), modeling unfinished words.
	PrefixBonus bool
	// SegmentPenalty < 1 is the per-segment prior: fewer, longer segments
	// are preferred when the database supports their co-occurrence.
	SegmentPenalty float64

	terms     []string
	termTotal float64
}

// NewCleaner builds a cleaner over the index vocabulary.
func NewCleaner(ix *invindex.Index) *Cleaner {
	c := &Cleaner{ix: ix, MaxEdits: 2, Lambda: 1.5, PrefixBonus: true, SegmentPenalty: 0.1}
	c.terms = ix.Terms()
	for _, t := range c.terms {
		c.termTotal += float64(ix.DF(t))
	}
	if c.termTotal == 0 {
		c.termTotal = 1
	}
	return c
}

// prior is the unigram language model P(c) with add-one smoothing.
func (c *Cleaner) prior(term string) float64 {
	return (float64(c.ix.DF(term)) + 1) / (c.termTotal + float64(len(c.terms)))
}

// errModel is P(q|c) ∝ exp(-λ·edits).
func (c *Cleaner) errModel(edits int) float64 {
	return math.Exp(-c.Lambda * float64(edits))
}

// Candidates returns the confusion set of token: dictionary terms within
// MaxEdits edits, plus (with PrefixBonus) completions of the token charged
// a single edit. Sorted by descending score.
func (c *Cleaner) Candidates(token string) []Candidate {
	token = strings.ToLower(token)
	var out []Candidate
	for _, t := range c.terms {
		d := boundedEditDistance(token, t, c.MaxEdits)
		if d < 0 && c.PrefixBonus && strings.HasPrefix(t, token) && len(t) > len(token) {
			d = 1
		}
		if d < 0 {
			continue
		}
		out = append(out, Candidate{
			Term:  t,
			Edits: d,
			Score: c.errModel(d) * c.prior(t),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// boundedEditDistance returns the Levenshtein distance of a and b, or -1
// if it exceeds bound (with the usual band shortcut).
func boundedEditDistance(a, b string, bound int) int {
	if abs(len(a)-len(b)) > bound {
		return -1
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > bound {
			return -1
		}
		prev, cur = cur, prev
	}
	if prev[len(b)] > bound {
		return -1
	}
	return prev[len(b)]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Segment is one cleaned segment: consecutive cleaned tokens that co-occur
// in at least one document.
type Segment struct {
	Tokens []string
	// Support is the number of documents containing all segment tokens.
	Support int
	Score   float64
}

// Result is a cleaned query.
type Result struct {
	Segments []Segment
	Score    float64
}

// Tokens flattens the cleaned token sequence.
func (r Result) Tokens() []string {
	var out []string
	for _, s := range r.Segments {
		out = append(out, s.Tokens...)
	}
	return out
}

// String renders "{apple ipad nano} {at&t}".
func (r Result) String() string {
	parts := make([]string, len(r.Segments))
	for i, s := range r.Segments {
		parts[i] = "{" + strings.Join(s.Tokens, " ") + "}"
	}
	return strings.Join(parts, " ")
}

// maxCandidatesPerToken bounds the per-token combination search inside a
// segment.
const maxCandidatesPerToken = 4

// Clean segments and corrects the query, maximizing the product of segment
// scores with bottom-up dynamic programming (slide 68). Each segment's
// tokens must co-occur in some document (preventing fragmentation and
// guaranteeing non-empty results); a query token with an empty confusion
// set is kept verbatim in its own unsupported segment.
func (c *Cleaner) Clean(query string) Result {
	tokens := text.Tokenize(query)
	n := len(tokens)
	if n == 0 {
		return Result{}
	}
	cands := make([][]Candidate, n)
	for i, tok := range tokens {
		cs := c.Candidates(tok)
		if len(cs) > maxCandidatesPerToken {
			cs = cs[:maxCandidatesPerToken]
		}
		cands[i] = cs
	}

	// bestSeg[i][j] = best cleaned segment covering tokens[i:j].
	bestSeg := func(i, j int) (Segment, bool) {
		if allEmpty(cands[i:j]) {
			// Unknown tokens pass through singly.
			if j-i == 1 {
				return Segment{Tokens: []string{tokens[i]}, Score: c.SegmentPenalty * c.errModel(0) / c.termTotal}, true
			}
			return Segment{}, false
		}
		best := Segment{}
		found := false
		choice := make([]Candidate, j-i)
		var rec func(p int, score float64)
		rec = func(p int, score float64) {
			if p == j-i {
				terms := make([]string, j-i)
				for k, cd := range choice {
					terms[k] = cd.Term
				}
				support := len(c.ix.Intersect(terms))
				if support == 0 {
					return
				}
				s := score * c.SegmentPenalty * (1 + math.Log(float64(support)+1))
				if !found || s > best.Score {
					found = true
					best = Segment{Tokens: terms, Support: support, Score: s}
				}
				return
			}
			if len(cands[i+p]) == 0 {
				return
			}
			for _, cd := range cands[i+p] {
				choice[p] = cd
				rec(p+1, score*cd.Score)
			}
		}
		rec(0, 1)
		return best, found
	}

	type cell struct {
		score    float64
		segments []Segment
		ok       bool
	}
	dp := make([]cell, n+1)
	dp[0] = cell{score: 1, ok: true}
	for j := 1; j <= n; j++ {
		for i := 0; i < j; i++ {
			if !dp[i].ok {
				continue
			}
			seg, ok := bestSeg(i, j)
			if !ok {
				continue
			}
			s := dp[i].score * seg.Score
			if !dp[j].ok || s > dp[j].score {
				segs := make([]Segment, len(dp[i].segments), len(dp[i].segments)+1)
				copy(segs, dp[i].segments)
				dp[j] = cell{score: s, segments: append(segs, seg), ok: true}
			}
		}
	}
	if !dp[n].ok {
		// Fallback: every token in its own segment, best candidate or
		// verbatim.
		var segs []Segment
		score := 1.0
		for i, tok := range tokens {
			term := tok
			s := c.errModel(0) / c.termTotal
			if len(cands[i]) > 0 {
				term = cands[i][0].Term
				s = cands[i][0].Score
			}
			segs = append(segs, Segment{Tokens: []string{term}, Score: s, Support: c.ix.DF(term)})
			score *= s
		}
		return Result{Segments: segs, Score: score}
	}
	return Result{Segments: dp[n].segments, Score: dp[n].score}
}

func allEmpty(cs [][]Candidate) bool {
	for _, c := range cs {
		if len(c) > 0 {
			return false
		}
	}
	return true
}
