package clean

import (
	"reflect"
	"testing"
	"testing/quick"

	"kwsearch/internal/invindex"
)

// productIndex mirrors the slide-67 setting: apple products and a carrier,
// with "ipad" documents more frequent than "ipod".
func productIndex() *invindex.Index {
	ix := invindex.New()
	ix.Add(0, "apple ipad nano tablet")
	ix.Add(1, "apple ipad nano silver")
	ix.Add(2, "apple ipad pro")
	ix.Add(3, "apple ipod nano music")
	ix.Add(4, "at&t wireless plan")
	ix.Add(5, "at&t family plan")
	ix.Add(6, "samsung galaxy tablet")
	return ix
}

// TestSlide67Cleaning reproduces E7: "Appl ipd nan att" cleans to the
// segmentation {apple ipad nano} {at&t ...}, picking "ipad" over "ipod" by
// the prior and keeping at&t in its own DB-backed segment.
func TestSlide67Cleaning(t *testing.T) {
	c := NewCleaner(productIndex())
	got := c.Clean("Appl ipd nan att")
	if len(got.Segments) != 2 {
		t.Fatalf("segments = %v", got)
	}
	if !reflect.DeepEqual(got.Segments[0].Tokens, []string{"apple", "ipad", "nano"}) {
		t.Errorf("segment 1 = %v, want [apple ipad nano]", got.Segments[0].Tokens)
	}
	if !reflect.DeepEqual(got.Segments[1].Tokens, []string{"at&t"}) {
		t.Errorf("segment 2 = %v, want [at&t]", got.Segments[1].Tokens)
	}
	// Non-empty result guarantee: every segment has support.
	for _, s := range got.Segments {
		if s.Support == 0 {
			t.Errorf("segment %v has no supporting documents", s.Tokens)
		}
	}
	if s := got.String(); s != "{apple ipad nano} {at&t}" {
		t.Errorf("String() = %q", s)
	}
}

func TestCandidatesRankedByScore(t *testing.T) {
	c := NewCleaner(productIndex())
	cands := c.Candidates("ipd")
	if len(cands) < 2 {
		t.Fatalf("candidates = %v", cands)
	}
	if cands[0].Term != "ipad" {
		t.Errorf("top candidate = %s, want ipad (more frequent prior)", cands[0].Term)
	}
	foundIpod := false
	for _, cd := range cands {
		if cd.Term == "ipod" {
			foundIpod = true
		}
		if cd.Edits > c.MaxEdits && cd.Edits != 1 {
			t.Errorf("candidate beyond MaxEdits: %+v", cd)
		}
	}
	if !foundIpod {
		t.Errorf("ipod missing from confusion set: %v", cands)
	}
	// Exact tokens come back with 0 edits and top score among same prior.
	exact := c.Candidates("apple")
	if len(exact) == 0 || exact[0].Term != "apple" || exact[0].Edits != 0 {
		t.Errorf("exact candidates = %v", exact)
	}
}

func TestPrefixCompletion(t *testing.T) {
	c := NewCleaner(productIndex())
	cands := c.Candidates("tabl")
	found := false
	for _, cd := range cands {
		if cd.Term == "tablet" {
			found = true
		}
	}
	if !found {
		t.Errorf("unfinished word not completed: %v", cands)
	}
}

func TestUnknownTokenPassesThrough(t *testing.T) {
	c := NewCleaner(productIndex())
	got := c.Clean("xyzzyqwert")
	if len(got.Segments) != 1 || got.Segments[0].Tokens[0] != "xyzzyqwert" {
		t.Fatalf("unknown token result = %v", got)
	}
	if got := c.Clean(""); len(got.Segments) != 0 {
		t.Fatalf("empty query = %v", got)
	}
}

func TestSegmentsNeverFragmentAcrossTables(t *testing.T) {
	// "apple" and "at&t" never co-occur: they must not share a segment.
	c := NewCleaner(productIndex())
	got := c.Clean("apple att")
	if len(got.Segments) != 2 {
		t.Fatalf("fragmentation control failed: %v", got)
	}
}

func TestBoundedEditDistance(t *testing.T) {
	cases := []struct {
		a, b  string
		bound int
		want  int
	}{
		{"ipd", "ipad", 2, 1},
		{"ipd", "ipod", 2, 1},
		{"appl", "apple", 2, 1},
		{"nan", "nano", 2, 1},
		{"abc", "xyz", 2, -1},
		{"same", "same", 2, 0},
		{"a", "abcdef", 2, -1},
	}
	for _, cse := range cases {
		if got := boundedEditDistance(cse.a, cse.b, cse.bound); got != cse.want {
			t.Errorf("ed(%q,%q,%d) = %d, want %d", cse.a, cse.b, cse.bound, got, cse.want)
		}
	}
}

// Property: the bounded distance agrees with the classic DP whenever it
// does not bail out, and it is symmetric.
func TestEditDistanceProperties(t *testing.T) {
	full := func(a, b string) int {
		prev := make([]int, len(b)+1)
		cur := make([]int, len(b)+1)
		for j := range prev {
			prev[j] = j
		}
		for i := 1; i <= len(a); i++ {
			cur[0] = i
			for j := 1; j <= len(b); j++ {
				cost := 1
				if a[i-1] == b[j-1] {
					cost = 0
				}
				cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
			}
			prev, cur = cur, prev
		}
		return prev[len(b)]
	}
	f := func(a, b string) bool {
		if len(a) > 8 {
			a = a[:8]
		}
		if len(b) > 8 {
			b = b[:8]
		}
		want := full(a, b)
		got := boundedEditDistance(a, b, 3)
		if want <= 3 {
			if got != want {
				return false
			}
		} else if got != -1 {
			return false
		}
		return boundedEditDistance(a, b, 3) == boundedEditDistance(b, a, 3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cleaning output tokens are always non-empty for non-empty
// queries and each supported segment's tokens really co-occur.
func TestCleanInvariant(t *testing.T) {
	c := NewCleaner(productIndex())
	for _, q := range []string{"appl", "ipod nano", "galxy tablet", "att plan", "apple ipad pro"} {
		got := c.Clean(q)
		if len(got.Tokens()) == 0 {
			t.Fatalf("Clean(%q) produced no tokens", q)
		}
		for _, s := range got.Segments {
			if s.Support > 0 {
				docs := c.ix.Intersect(s.Tokens)
				if len(docs) != s.Support {
					t.Fatalf("segment %v support mismatch", s.Tokens)
				}
			}
		}
	}
}
