// Package xpathgen turns keyword queries into scored XPath-like structured
// queries over an XML tree — the probabilistic refinement of Petkova et
// al. (ECIR'09, slides 47-48): per-keyword content/structure bindings get
// language-model probabilities, combinations are reduced to valid queries
// with aggregation / specialization / nesting operators, and only queries
// with non-empty results are kept, ranked by probability.
//
// The query grammar is the fragment the slides use: one target element
// with direct content predicates and nested element predicates,
// //target[~"w"][.//label[~"w"]].
package xpathgen

import (
	"fmt"
	"sort"
	"strings"

	"kwsearch/internal/text"
	"kwsearch/internal/xmltree"
)

// Nest is one nested predicate [.//Label[~"Contains..."]].
type Nest struct {
	Label    string
	Contains []string
}

// Query is one structured interpretation.
type Query struct {
	Target string
	// Contains are content predicates directly on the target.
	Contains []string
	Nested   []Nest
}

// String renders `//paper[~"xml"][.//author[~"widom"]]`.
func (q Query) String() string {
	var b strings.Builder
	b.WriteString("//")
	b.WriteString(q.Target)
	if len(q.Contains) > 0 {
		fmt.Fprintf(&b, "[~%q]", strings.Join(q.Contains, " "))
	}
	for _, n := range q.Nested {
		fmt.Fprintf(&b, "[.//%s[~%q]]", n.Label, strings.Join(n.Contains, " "))
	}
	return b.String()
}

// Evaluate returns the target nodes satisfying every predicate, in
// document order.
func (q Query) Evaluate(t *xmltree.Tree) []*xmltree.Node {
	var out []*xmltree.Node
	for _, n := range t.NodesByLabel(q.Target) {
		if q.matches(n) {
			out = append(out, n)
		}
	}
	return out
}

func (q Query) matches(n *xmltree.Node) bool {
	sub := xmltree.Subtree(n)
	subText := xmltree.SubtreeText(n)
	for _, w := range q.Contains {
		if !text.Contains(subText, w) {
			return false
		}
	}
	for _, nest := range q.Nested {
		ok := false
		for _, d := range sub {
			if d == n || d.Label != nest.Label {
				continue
			}
			dt := xmltree.SubtreeText(d)
			all := true
			for _, w := range nest.Contains {
				if !text.Contains(dt, w) {
					all = false
					break
				}
			}
			if all {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Scored pairs a query with its probability.
type Scored struct {
	Query Query
	Prob  float64
	// Results caches the non-empty evaluation that validated the query.
	Results []*xmltree.Node
}

// stats aggregates the per-label statistics the estimators need.
type stats struct {
	instances map[string]int
	// wordIn[label][term] counts instances of label whose own value
	// contains term.
	wordIn map[string]map[string]int
	// containIn[outer][inner] counts instances of outer whose subtree has
	// an inner-labeled descendant.
	containIn map[string]map[string]int
	labels    []string
}

func collectStats(t *xmltree.Tree) *stats {
	st := &stats{
		instances: map[string]int{},
		wordIn:    map[string]map[string]int{},
		containIn: map[string]map[string]int{},
	}
	for _, n := range t.Nodes() {
		st.instances[n.Label]++
		if st.wordIn[n.Label] == nil {
			st.wordIn[n.Label] = map[string]int{}
		}
		seen := map[string]bool{}
		for _, tok := range text.Tokenize(n.Value) {
			if !seen[tok] {
				seen[tok] = true
				st.wordIn[n.Label][tok]++
			}
		}
		inner := map[string]bool{}
		for _, d := range xmltree.Subtree(n) {
			if d != n {
				inner[d.Label] = true
			}
		}
		if st.containIn[n.Label] == nil {
			st.containIn[n.Label] = map[string]int{}
		}
		for l := range inner {
			st.containIn[n.Label][l]++
		}
	}
	for l := range st.instances {
		st.labels = append(st.labels, l)
	}
	sort.Strings(st.labels)
	return st
}

// binding is one keyword→label assignment with its LM probability
// Pr[~w | label] (slide 47's pLM).
type binding struct {
	keyword string
	label   string
	prob    float64
}

func (st *stats) bindings(keyword string, max int) []binding {
	var out []binding
	for _, l := range st.labels {
		hits := st.wordIn[l][keyword]
		if hits == 0 {
			continue
		}
		out = append(out, binding{
			keyword: keyword,
			label:   l,
			prob:    float64(hits) / float64(st.instances[l]+1),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].prob != out[j].prob {
			return out[i].prob > out[j].prob
		}
		return out[i].label < out[j].label
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// containment is Pr[label is a descendant of target] — the specialization
// operator's probability (slide 47).
func (st *stats) containment(target, label string) float64 {
	if target == label {
		return 1
	}
	n := st.instances[target]
	if n == 0 {
		return 0
	}
	return float64(st.containIn[target][label]) / float64(n)
}

// infoGain is the IG(A) surrogate of slide 48: targets with more
// instances discriminate more when a nested predicate holds (a root
// element that exists once carries no information).
func (st *stats) infoGain(target string) float64 {
	n := st.instances[target]
	return 1 - 1/float64(1+n)
}

// Generate enumerates scored structured queries for the keyword query:
// every combination of top bindings, reduced under each candidate target
// by aggregation (shared label → one predicate) and nesting/specialization
// (other labels become [.//label[~w]] with containment and IG factors).
// Only queries with non-empty results survive; top-k by probability.
func Generate(t *xmltree.Tree, terms []string, k int) []Scored {
	norm := make([]string, 0, len(terms))
	for _, raw := range terms {
		if n := text.Normalize(raw); n != "" {
			norm = append(norm, n)
		}
	}
	if len(norm) == 0 {
		return nil
	}
	st := collectStats(t)
	const maxBindings = 3
	cands := make([][]binding, len(norm))
	for i, w := range norm {
		cands[i] = st.bindings(w, maxBindings)
		if len(cands[i]) == 0 {
			return nil
		}
	}

	seen := map[string]bool{}
	var out []Scored
	choice := make([]binding, len(norm))
	var rec func(i int)
	rec = func(i int) {
		if i == len(norm) {
			reduceCombination(t, st, choice, seen, &out)
			return
		}
		for _, b := range cands[i] {
			choice[i] = b
			rec(i + 1)
		}
	}
	rec(0)

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].Query.String() < out[j].Query.String()
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// reduceCombination emits the valid queries of one binding combination for
// every candidate target label.
func reduceCombination(t *xmltree.Tree, st *stats, choice []binding, seen map[string]bool, out *[]Scored) {
	baseProb := 1.0
	for _, b := range choice {
		baseProb *= b.prob
	}
	for _, target := range st.labels {
		q := Query{Target: target}
		prob := baseProb * st.infoGain(target)
		ok := true
		for _, b := range choice {
			if b.label == target {
				// Aggregation: predicate directly on the target.
				q.Contains = append(q.Contains, b.keyword)
				continue
			}
			c := st.containment(target, b.label)
			if c == 0 {
				ok = false
				break
			}
			prob *= c
			q.Nested = append(q.Nested, Nest{Label: b.label, Contains: []string{b.keyword}})
		}
		if !ok {
			continue
		}
		// Merge nested predicates sharing a label (aggregation inside the
		// nest): //a[.//t[~x]][.//t[~y]] stays as-is — both forms are
		// generated by the operators; we keep the separated form, which is
		// the weaker (superset) query, and let validation decide.
		key := q.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		res := q.Evaluate(t)
		if len(res) == 0 {
			continue // slide 48: only valid (non-empty) queries survive
		}
		*out = append(*out, Scored{Query: q, Prob: prob, Results: res})
	}
}
