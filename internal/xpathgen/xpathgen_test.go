package xpathgen

import (
	"strings"
	"testing"

	"kwsearch/internal/dataset"
	"kwsearch/internal/xmltree"
)

func bibTree() *xmltree.Tree {
	b := xmltree.NewBuilder("bib")
	conf := b.Child(b.Root(), "conf", "")
	for _, row := range [][2]string{
		{"XML streams", "Widom"},
		{"XML views", "Widom"},
		{"Datalog", "Ullman"},
	} {
		p := b.Child(conf, "paper", "")
		b.Child(p, "title", row[0])
		b.Child(p, "author", row[1])
	}
	j := b.Child(b.Root(), "journal", "")
	p := b.Child(j, "paper", "")
	b.Child(p, "title", "Query optimization")
	b.Child(p, "author", "Selinger")
	return b.Freeze()
}

func TestQueryEvaluate(t *testing.T) {
	tr := bibTree()
	q := Query{
		Target: "paper",
		Nested: []Nest{{Label: "title", Contains: []string{"xml"}}, {Label: "author", Contains: []string{"widom"}}},
	}
	got := q.Evaluate(tr)
	if len(got) != 2 {
		t.Fatalf("results = %d, want the two Widom XML papers", len(got))
	}
	// Direct content predicate on a leaf target.
	q2 := Query{Target: "title", Contains: []string{"xml"}}
	if got := q2.Evaluate(tr); len(got) != 2 {
		t.Fatalf("title results = %d", len(got))
	}
	// Unsatisfiable query.
	q3 := Query{Target: "paper", Contains: []string{"nosuch"}}
	if got := q3.Evaluate(tr); len(got) != 0 {
		t.Fatalf("impossible query matched %d", len(got))
	}
}

func TestQueryString(t *testing.T) {
	q := Query{
		Target:   "paper",
		Contains: []string{"xml"},
		Nested:   []Nest{{Label: "author", Contains: []string{"widom"}}},
	}
	want := `//paper[~"xml"][.//author[~"widom"]]`
	if got := q.String(); got != want {
		t.Fatalf("String = %s, want %s", got, want)
	}
}

func TestGenerateWidomXML(t *testing.T) {
	tr := bibTree()
	got := Generate(tr, []string{"widom", "xml"}, 5)
	if len(got) == 0 {
		t.Fatal("no queries generated")
	}
	// The top query targets paper (not bib/conf, thanks to the IG factor)
	// with nested title/author predicates.
	top := got[0]
	if top.Query.Target != "paper" {
		t.Errorf("top target = %s (query %s)", top.Query.Target, top.Query)
	}
	s := top.Query.String()
	if !strings.Contains(s, "widom") || !strings.Contains(s, "xml") {
		t.Errorf("top query misses keywords: %s", s)
	}
	if len(top.Results) != 2 {
		t.Errorf("top query results = %d, want 2", len(top.Results))
	}
	// Every surviving query is valid (non-empty) and probabilities descend.
	for i, sc := range got {
		if len(sc.Results) == 0 {
			t.Fatalf("empty-result query survived: %s", sc.Query)
		}
		if sc.Prob <= 0 {
			t.Fatalf("prob = %v", sc.Prob)
		}
		if i > 0 && sc.Prob > got[i-1].Prob {
			t.Fatalf("not sorted by probability")
		}
	}
}

func TestGenerateUnmatchedKeyword(t *testing.T) {
	tr := bibTree()
	if got := Generate(tr, []string{"nosuchword"}, 5); got != nil {
		t.Errorf("unmatched keyword generated %v", got)
	}
	if got := Generate(tr, nil, 5); got != nil {
		t.Errorf("empty query generated %v", got)
	}
}

func TestGenerateSingleKeywordAggregation(t *testing.T) {
	tr := bibTree()
	got := Generate(tr, []string{"xml"}, 3)
	if len(got) == 0 {
		t.Fatal("nothing generated")
	}
	// The direct binding //title[~"xml"] must be among the top queries.
	found := false
	for _, sc := range got {
		if sc.Query.Target == "title" && len(sc.Query.Contains) == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("direct title binding missing: %v", got)
	}
}

func TestGenerateOnAuctions(t *testing.T) {
	tr := dataset.AuctionsXML()
	got := Generate(tr, []string{"tom", "mary"}, 5)
	if len(got) == 0 {
		t.Fatal("nothing generated")
	}
	// Valid targets must be auction elements (the only common ancestors).
	top := got[0]
	if !strings.Contains(top.Query.Target, "auction") && top.Query.Target != "auctions" {
		t.Errorf("top target = %s", top.Query.Target)
	}
}
