// Package eval provides the evaluation substrate of slides 104-109: the
// four search-quality axioms for XML keyword search (data/query
// monotonicity and consistency, Liu et al. VLDB'08) as executable checks
// against any engine, and INEX-style retrieval metrics (character-level
// precision/recall/F, generalized precision gP and AgP with the
// tolerance-window reading model).
package eval

import (
	"fmt"

	"kwsearch/internal/xmltree"
)

// Engine is any XML keyword-search engine under evaluation: it returns
// result subtree roots for an AND-semantics keyword query.
type Engine func(ix *xmltree.Index, terms []string) []*xmltree.Node

// Violation reports one axiom failure.
type Violation struct {
	Axiom  string
	Detail string
}

func idsOf(nodes []*xmltree.Node) map[xmltree.NodeID]bool {
	m := make(map[xmltree.NodeID]bool, len(nodes))
	for _, n := range nodes {
		m[n.ID] = true
	}
	return m
}

// subtreeContainsTerm checks whether the subtree rooted at n matches term
// per the index.
func subtreeContainsTerm(ix *xmltree.Index, n *xmltree.Node, term string) bool {
	for _, m := range ix.Lookup(term) {
		if n.Dewey.IsAncestorOrSelf(m.Dewey) {
			return true
		}
	}
	return false
}

// CheckQueryMonotonicity verifies that adding keyword extra to the query
// does not increase the number of results (AND semantics only narrows).
func CheckQueryMonotonicity(e Engine, ix *xmltree.Index, terms []string, extra string) []Violation {
	before := e(ix, terms)
	after := e(ix, append(append([]string(nil), terms...), extra))
	if len(after) > len(before) {
		return []Violation{{
			Axiom: "query-monotonicity",
			Detail: fmt.Sprintf("adding %q grew results from %d to %d",
				extra, len(before), len(after)),
		}}
	}
	return nil
}

// CheckQueryConsistency verifies slide 109: every result of Q ∪ {extra}
// that is new (not a result of Q) must contain the new keyword.
func CheckQueryConsistency(e Engine, ix *xmltree.Index, terms []string, extra string) []Violation {
	before := idsOf(e(ix, terms))
	after := e(ix, append(append([]string(nil), terms...), extra))
	var out []Violation
	for _, r := range after {
		if before[r.ID] {
			continue
		}
		if !subtreeContainsTerm(ix, r, extra) {
			out = append(out, Violation{
				Axiom: "query-consistency",
				Detail: fmt.Sprintf("new result %s (node %d) does not contain %q",
					r.LabelPath(), r.ID, extra),
			})
		}
	}
	return out
}

// CheckDataMonotonicity verifies that extending the document with content
// matching all keywords does not reduce the result count. The after tree
// must extend the before tree append-only (existing node IDs preserved).
func CheckDataMonotonicity(e Engine, before, after *xmltree.Index, terms []string) []Violation {
	rb := e(before, terms)
	ra := e(after, terms)
	if len(ra) < len(rb) {
		return []Violation{{
			Axiom: "data-monotonicity",
			Detail: fmt.Sprintf("adding data shrank results from %d to %d",
				len(rb), len(ra)),
		}}
	}
	return nil
}

// CheckDataConsistency verifies that every new result produced after an
// append-only data extension involves the new data: its subtree must reach
// a node that did not exist before.
func CheckDataConsistency(e Engine, before, after *xmltree.Index, terms []string) []Violation {
	oldLen := xmltree.NodeID(before.Tree().Len())
	rb := idsOf(e(before, terms))
	ra := e(after, terms)
	var out []Violation
	for _, r := range ra {
		if r.ID < oldLen && rb[r.ID] {
			continue
		}
		touchesNew := false
		for _, n := range xmltree.Subtree(r) {
			if n.ID >= oldLen {
				touchesNew = true
				break
			}
		}
		if !touchesNew {
			out = append(out, Violation{
				Axiom: "data-consistency",
				Detail: fmt.Sprintf("new result %s (node %d) does not involve the inserted data",
					r.LabelPath(), r.ID),
			})
		}
	}
	return out
}

// CheckAll runs the two query axioms for each extra keyword and both data
// axioms for the extended document, aggregating the violations — the E12
// harness.
func CheckAll(e Engine, before, after *xmltree.Index, terms []string, extras []string) []Violation {
	var out []Violation
	for _, extra := range extras {
		out = append(out, CheckQueryMonotonicity(e, before, terms, extra)...)
		out = append(out, CheckQueryConsistency(e, before, terms, extra)...)
	}
	if after != nil {
		out = append(out, CheckDataMonotonicity(e, before, after, terms)...)
		out = append(out, CheckDataConsistency(e, before, after, terms)...)
	}
	return out
}
