package eval

import (
	"math"
	"testing"

	"kwsearch/internal/dataset"
	"kwsearch/internal/lca"
	"kwsearch/internal/xmltree"
)

// slcaEngine adapts the SLCA search to the Engine interface.
func slcaEngine(ix *xmltree.Index, terms []string) []*xmltree.Node {
	return lca.SLCA(ix, terms)
}

// brokenEngine deliberately violates query consistency (the slide-109
// pathology): for the larger query it returns subtrees that do NOT contain
// the added keyword.
func brokenEngine(ix *xmltree.Index, terms []string) []*xmltree.Node {
	res := lca.SLCA(ix, terms)
	if len(terms) < 3 {
		return res
	}
	// Swap in results that ignore the last keyword entirely and that were
	// not results of the shorter query: the demo subtree.
	extra := terms[len(terms)-1]
	var out []*xmltree.Node
	for _, n := range ix.Tree().NodesByLabel("demo") {
		out = append(out, n)
	}
	_ = extra
	return out
}

// TestSlide109QueryConsistency reproduces E12: SLCA passes, the broken
// engine is caught when "sigmod" is added to {paper, mark}.
func TestSlide109QueryConsistency(t *testing.T) {
	ix := xmltree.NewIndex(dataset.ConfDemoXML())
	terms := []string{"paper", "mark"}
	if v := CheckQueryConsistency(slcaEngine, ix, terms, "sigmod"); len(v) != 0 {
		t.Errorf("SLCA violated query consistency: %v", v)
	}
	v := CheckQueryConsistency(brokenEngine, ix, terms, "sigmod")
	if len(v) == 0 {
		t.Fatalf("broken engine not caught")
	}
	if v[0].Axiom != "query-consistency" {
		t.Errorf("violation = %+v", v[0])
	}
}

func TestQueryMonotonicity(t *testing.T) {
	ix := xmltree.NewIndex(dataset.ConfDemoXML())
	if v := CheckQueryMonotonicity(slcaEngine, ix, []string{"paper"}, "mark"); len(v) != 0 {
		t.Errorf("SLCA violated query monotonicity: %v", v)
	}
	grower := func(ix *xmltree.Index, terms []string) []*xmltree.Node {
		// Returns more results for longer queries — violates monotonicity.
		return ix.Tree().Nodes()[:len(terms)+1]
	}
	if v := CheckQueryMonotonicity(grower, ix, []string{"paper"}, "mark"); len(v) == 0 {
		t.Errorf("growing engine not caught")
	}
}

// buildBeforeAfter returns the demo tree and an extension of it with one
// more matching paper appended (IDs of existing nodes preserved).
func buildBeforeAfter() (*xmltree.Index, *xmltree.Index) {
	mk := func(extended bool) *xmltree.Tree {
		b := xmltree.NewBuilder("conf")
		r := b.Root()
		b.Child(r, "name", "SIGMOD")
		p1 := b.Child(r, "paper", "")
		b.Child(p1, "title", "keyword")
		b.Child(p1, "author", "Mark")
		if extended {
			p2 := b.Child(r, "paper", "")
			b.Child(p2, "title", "keyword engines")
			b.Child(p2, "author", "Mark")
		}
		return b.Freeze()
	}
	return xmltree.NewIndex(mk(false)), xmltree.NewIndex(mk(true))
}

func TestDataAxioms(t *testing.T) {
	before, after := buildBeforeAfter()
	terms := []string{"keyword", "mark"}
	if v := CheckDataMonotonicity(slcaEngine, before, after, terms); len(v) != 0 {
		t.Errorf("SLCA violated data monotonicity: %v", v)
	}
	if v := CheckDataConsistency(slcaEngine, before, after, terms); len(v) != 0 {
		t.Errorf("SLCA violated data consistency: %v", v)
	}
	// An engine that drops results when data is added is caught.
	shrinker := func(ix *xmltree.Index, terms []string) []*xmltree.Node {
		if ix.Tree().Len() > before.Tree().Len() {
			return nil // drops everything once data is added
		}
		return lca.SLCA(ix, terms)
	}
	if v := CheckDataMonotonicity(shrinker, before, after, terms); len(v) == 0 {
		t.Errorf("shrinking engine not caught")
	}
	// An engine inventing unrelated new results is caught by consistency.
	inventor := func(ix *xmltree.Index, terms []string) []*xmltree.Node {
		if ix.Tree().Len() > before.Tree().Len() {
			// Returns the old name node, which was not a result before and
			// does not touch the inserted data.
			return append(lca.SLCA(ix, terms), ix.Tree().NodesByLabel("name")...)
		}
		return lca.SLCA(ix, terms)
	}
	if v := CheckDataConsistency(inventor, before, after, terms); len(v) == 0 {
		t.Errorf("inventing engine not caught")
	}
}

func TestCheckAllAggregates(t *testing.T) {
	before, after := buildBeforeAfter()
	v := CheckAll(slcaEngine, before, after, []string{"keyword"}, []string{"mark"})
	if len(v) != 0 {
		t.Errorf("SLCA violated axioms: %v", v)
	}
}

func inexSetup() (*xmltree.Tree, []*xmltree.Node, map[xmltree.NodeID]bool) {
	b := xmltree.NewBuilder("doc")
	r := b.Root()
	s1 := b.Child(r, "sec", "relevant passage here")
	s2 := b.Child(r, "sec", "irrelevant filler text")
	s3 := b.Child(r, "sec", "another relevant bit")
	tr := b.Freeze()
	relevant := map[xmltree.NodeID]bool{s1.ID: true, s3.ID: true}
	return tr, []*xmltree.Node{s1, s2, s3}, relevant
}

func TestJudgeResultsAndGP(t *testing.T) {
	tr, results, rel := inexSetup()
	scored := JudgeResults(results, rel, tr)
	if scored[0].Precision != 1 || scored[1].Precision != 0 || scored[2].Precision != 1 {
		t.Fatalf("precisions = %+v", scored)
	}
	if scored[0].Recall >= 1 || scored[0].Recall <= 0 {
		t.Errorf("recall = %v, want partial", scored[0].Recall)
	}
	// gP(1) = F of first result; gP(2) averages in the zero.
	if !(GP(scored, 1) > GP(scored, 2)) {
		t.Errorf("gP(1)=%v gP(2)=%v", GP(scored, 1), GP(scored, 2))
	}
	agp := AgP(scored)
	if agp <= 0 || agp > 1 {
		t.Errorf("AgP = %v", agp)
	}
	// AgP is the mean of gP(k).
	want := (GP(scored, 1) + GP(scored, 2) + GP(scored, 3)) / 3
	if math.Abs(agp-want) > 1e-12 {
		t.Errorf("AgP = %v, want %v", agp, want)
	}
	if GP(nil, 3) != 0 || AgP(nil) != 0 || GP(scored, 0) != 0 {
		t.Errorf("empty-input metrics must be 0")
	}
}

func TestTruncateAtTolerance(t *testing.T) {
	tr, results, rel := inexSetup()
	// Order with the irrelevant one first: tolerance 1 cuts immediately.
	scored := JudgeResults([]*xmltree.Node{results[1], results[0], results[2]}, rel, tr)
	cut := TruncateAtTolerance(scored, 1)
	if len(cut) != 1 {
		t.Fatalf("tolerance cut = %d results, want 1", len(cut))
	}
	// Tolerance 2: one irrelevant is forgiven.
	cut = TruncateAtTolerance(scored, 2)
	if len(cut) != 3 {
		t.Fatalf("tolerance-2 cut = %d results, want 3", len(cut))
	}
	if got := TruncateAtTolerance(scored, 0); len(got) != 3 {
		t.Errorf("tolerance 0 must disable truncation")
	}
}

func TestFMeasure(t *testing.T) {
	if FMeasure(0, 0) != 0 {
		t.Errorf("F(0,0) != 0")
	}
	if math.Abs(FMeasure(1, 1)-1) > 1e-12 {
		t.Errorf("F(1,1) != 1")
	}
	if math.Abs(FMeasure(0.5, 1)-2.0/3) > 1e-12 {
		t.Errorf("F(0.5,1) = %v", FMeasure(0.5, 1))
	}
}
