package eval

import "kwsearch/internal/xmltree"

// Scored is one result with its character-level quality (slide 105).
type Scored struct {
	Result    *xmltree.Node
	Precision float64
	Recall    float64
	F         float64
}

// FMeasure is the harmonic mean of precision and recall.
func FMeasure(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// JudgeResults scores a ranked result list against a ground truth of
// relevant nodes: precision = relevant characters in the result / result
// characters; recall = relevant characters retrieved / total relevant
// characters (slide 105's INEX measure, with node Values as the character
// spans).
func JudgeResults(results []*xmltree.Node, relevant map[xmltree.NodeID]bool, tree *xmltree.Tree) []Scored {
	totalRel := 0
	for id := range relevant {
		if n := tree.Node(id); n != nil {
			totalRel += len(n.Value)
		}
	}
	out := make([]Scored, len(results))
	for i, r := range results {
		relChars, total := 0, 0
		for _, n := range xmltree.Subtree(r) {
			total += len(n.Value)
			if relevant[n.ID] {
				relChars += len(n.Value)
			}
		}
		var p, rec float64
		if total > 0 {
			p = float64(relChars) / float64(total)
		}
		if totalRel > 0 {
			rec = float64(relChars) / float64(totalRel)
		}
		out[i] = Scored{Result: r, Precision: p, Recall: rec, F: FMeasure(p, rec)}
	}
	return out
}

// GP is generalized precision at rank k: the average score of the first k
// results (slide 106).
func GP(scored []Scored, k int) float64 {
	if k <= 0 || len(scored) == 0 {
		return 0
	}
	if k > len(scored) {
		k = len(scored)
	}
	s := 0.0
	for i := 0; i < k; i++ {
		s += scored[i].F
	}
	return s / float64(k)
}

// AgP averages GP over every rank — the list-level measure of slide 106.
func AgP(scored []Scored) float64 {
	if len(scored) == 0 {
		return 0
	}
	s := 0.0
	for k := 1; k <= len(scored); k++ {
		s += GP(scored, k)
	}
	return s / float64(len(scored))
}

// TruncateAtTolerance models the slide-105 reading behaviour: the user
// stops after tol consecutive fully irrelevant results; the tail is not
// read and does not count.
func TruncateAtTolerance(scored []Scored, tol int) []Scored {
	if tol <= 0 {
		return scored
	}
	run := 0
	for i, s := range scored {
		if s.F == 0 {
			run++
			if run >= tol {
				return scored[:i+1]
			}
		} else {
			run = 0
		}
	}
	return scored
}
