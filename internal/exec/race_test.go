package exec

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentTopKStress hammers one executor from many goroutines with
// overlapping queries and worker counts — meaningful under -race, where it
// guards the shared caches, the pool's watermarks, and the evaluator's
// read-only-after-Prewarm contract.
func TestConcurrentTopKStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	x := newTestExecutor(4)
	queries := []Query{
		{Terms: []string{"keyword", "search"}, K: 10, MaxCNSize: 4},
		{Terms: []string{"wang", "search"}, K: 5, MaxCNSize: 4},
		{Terms: []string{"keyword"}, K: 3, MaxCNSize: 3},
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = renderResults(x.TopKSerial(q))
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				qi := (g + i) % len(queries)
				q := queries[qi]
				q.Workers = 1 + (g+i)%4
				rs, _, err := x.TopK(context.Background(), q)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if got := renderResults(rs); got != want[qi] {
					t.Errorf("goroutine %d query %d: concurrent answer differs from serial", g, qi)
					return
				}
				if i%4 == 3 && g == 0 {
					x.InvalidateCaches() // interleave invalidation with queries
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCancellationMidEvaluation races context cancellation against running
// worker pools: cancellation at an arbitrary point must yield either a
// clean ctx error or the complete (serial-identical) answer — never a
// panic, deadlock, or torn partial result.
func TestCancellationMidEvaluation(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	x := newTestExecutor(4)
	q := Query{Terms: []string{"keyword", "search"}, K: 10, MaxCNSize: 5}
	want := renderResults(x.TopKSerial(q))

	for trial := 0; trial < 30; trial++ {
		x.InvalidateCaches() // force real evaluation every trial
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			// Spread cancellation points from "immediately" to "after
			// completion" across trials.
			time.Sleep(time.Duration(trial) * 50 * time.Microsecond)
			cancel()
			close(done)
		}()
		rs, st, err := x.TopK(ctx, q)
		<-done
		switch err {
		case nil:
			if got := renderResults(rs); got != want {
				t.Fatalf("trial %d: uncancelled answer differs from serial", trial)
			}
		case context.Canceled:
			// The certified prefix travels with the error (possibly empty,
			// possibly the whole answer when cancellation raced completion);
			// whatever came back must be a byte-exact prefix of the serial
			// top-k — never a torn result.
			if got := renderResults(rs); !strings.HasPrefix(want, got) {
				t.Fatalf("trial %d: cancelled call returned a non-prefix answer (%d results)", trial, len(rs))
			}
			if len(rs) > 0 && !st.Partial {
				t.Fatalf("trial %d: cancelled call returned %d results without Stats.Partial", trial, len(rs))
			}
		default:
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
	}
}
