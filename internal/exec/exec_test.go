package exec

import (
	"context"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"kwsearch/internal/cn"
	"kwsearch/internal/dataset"
	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
)

var (
	fixOnce sync.Once
	fixDB   *relstore.DB
	fixIx   *invindex.Index
)

// dblp returns the shared DBLP fixture (built once per test binary).
func dblp() (*relstore.DB, *invindex.Index) {
	fixOnce.Do(func() {
		fixDB = dataset.DBLP(dataset.DefaultDBLPConfig())
		fixIx = invindex.FromDB(fixDB)
	})
	return fixDB, fixIx
}

func newTestExecutor(workers int) *Executor {
	db, ix := dblp()
	return New(db, ix, Options{
		Workers:    workers,
		FreeTables: []string{"write", "cite"},
	})
}

// renderResults serializes results bit-exactly: canonical CN, tuple IDs in
// CN node order, and the raw float64 bits of the score. Two result lists
// render equal iff they are byte-identical answers.
func renderResults(rs []cn.Result) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(r.CN.Canonical())
		for _, tp := range r.Tuples {
			b.WriteByte(' ')
			b.WriteString(strconv.Itoa(int(tp.ID)))
		}
		b.WriteByte('@')
		b.WriteString(strconv.FormatUint(math.Float64bits(r.Score), 16))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestTopKMatchesSerialByteIdentical is the acceptance-criteria check: the
// worker pool's answer must be byte-identical to full serial evaluation,
// for every worker count, including the result-cache replay.
func TestTopKMatchesSerialByteIdentical(t *testing.T) {
	queries := []Query{
		{Terms: []string{"keyword", "search"}, K: 10, MaxCNSize: 5},
		{Terms: []string{"wang", "search"}, K: 5, MaxCNSize: 5},
		{Terms: []string{"keyword", "search", "database"}, K: 10, MaxCNSize: 4},
		{Terms: []string{"keyword"}, K: 3, MaxCNSize: 3},
	}
	for _, q := range queries {
		x := newTestExecutor(4)
		want := renderResults(x.TopKSerial(q))
		for _, workers := range []int{1, 2, 4, 8} {
			qq := q
			qq.Workers = workers
			rs, st, err := x.TopK(context.Background(), qq)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", q.Terms, workers, err)
			}
			if got := renderResults(rs); got != want {
				t.Errorf("%v workers=%d: parallel answer differs from serial\ngot:\n%swant:\n%s",
					q.Terms, workers, got, want)
			}
			if !st.ResultCacheHit && st.CNs > 0 && st.Evaluated+st.Skipped != st.CNs {
				t.Errorf("%v workers=%d: evaluated %d + skipped %d != CNs %d",
					q.Terms, workers, st.Evaluated, st.Skipped, st.CNs)
			}
		}
	}
}

// TestParallelBeatsSerial is the acceptance-criteria perf check: at 4
// workers, the executor (bound pruning + prefix reuse + pool) must answer
// the DBLP fixture query faster than full serial evaluation. Best-of-3 on
// both sides to damp scheduler noise; the win is algorithmic (the serial
// reference evaluates every CN), so it holds even on one core.
func TestParallelBeatsSerial(t *testing.T) {
	q := Query{Terms: []string{"keyword", "search"}, K: 10, MaxCNSize: 5, Workers: 4}

	best := func(f func()) time.Duration {
		d := time.Duration(math.MaxInt64)
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			if e := time.Since(start); e < d {
				d = e
			}
		}
		return d
	}

	x := newTestExecutor(4)
	// Warm once outside timing so both sides measure steady-state work.
	x.TopKSerial(q)

	serial := best(func() { x.TopKSerial(q) })
	parallel := best(func() {
		x.InvalidateCaches() // no result-cache replays in the timed region
		if _, _, err := x.TopK(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("serial=%v parallel=%v (%.2fx)", serial, parallel, float64(serial)/float64(parallel))
	if parallel >= serial {
		t.Errorf("parallel executor (%v) not faster than serial (%v) at 4 workers", parallel, serial)
	}
}

// TestResultCache checks the whole-query cache: a repeated query is served
// from cache with the identical answer, caller mutation cannot corrupt the
// cached copy, and InvalidateCaches forces re-execution.
func TestResultCache(t *testing.T) {
	x := newTestExecutor(2)
	q := Query{Terms: []string{"keyword", "search"}, K: 5, MaxCNSize: 4}

	rs1, st1, err := x.TopK(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if st1.ResultCacheHit {
		t.Fatal("first query claims a result-cache hit")
	}
	want := renderResults(rs1)
	if len(rs1) > 0 {
		rs1[0].Score = -1 // caller mutation must not reach the cache
	}

	rs2, st2, err := x.TopK(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.ResultCacheHit {
		t.Error("second identical query missed the result cache")
	}
	if got := renderResults(rs2); got != want {
		t.Errorf("cached answer differs:\ngot:\n%swant:\n%s", got, want)
	}

	x.InvalidateCaches()
	_, st3, err := x.TopK(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if st3.ResultCacheHit {
		t.Error("query after InvalidateCaches still hit the result cache")
	}
	_, results := x.CacheStats()
	if results.Stale == 0 {
		t.Error("expected a stale result-cache entry after invalidation")
	}
}

// TestNoPostingsFastPath: a term absent from the index short-circuits the
// query (AND semantics) without building an evaluator, and the nil answer
// is itself cached.
func TestNoPostingsFastPath(t *testing.T) {
	x := newTestExecutor(2)
	q := Query{Terms: []string{"keyword", "zzzznosuchterm"}, K: 5, MaxCNSize: 4}
	rs, st, err := x.TopK(context.Background(), q)
	if err != nil || rs != nil {
		t.Fatalf("want nil results, got %v (err %v)", rs, err)
	}
	if st.CNs != 0 {
		t.Errorf("fast path enumerated %d CNs", st.CNs)
	}
	if _, st2, _ := x.TopK(context.Background(), q); !st2.ResultCacheHit {
		t.Error("empty answer was not cached")
	}
	if rs := x.TopKSerial(q); len(rs) != 0 {
		t.Errorf("serial reference disagrees: %d results for impossible query", len(rs))
	}
}

// TestEmptyTerms: queries that normalize to nothing return nothing.
func TestEmptyTerms(t *testing.T) {
	x := newTestExecutor(2)
	for _, terms := range [][]string{nil, {}, {""}, {"  ", "\t"}} {
		rs, _, err := x.TopK(context.Background(), Query{Terms: terms})
		if err != nil || len(rs) != 0 {
			t.Errorf("terms %q: got %d results, err %v", terms, len(rs), err)
		}
	}
}

// TestContextCancelled: a cancelled context aborts TopK with ctx.Err() and
// no partial results.
func TestContextCancelled(t *testing.T) {
	x := newTestExecutor(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs, _, err := x.TopK(ctx, Query{Terms: []string{"keyword", "search"}, K: 10, MaxCNSize: 5})
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rs != nil {
		t.Fatalf("cancelled query returned %d results", len(rs))
	}
}

// TestStatsShape: JobsPerWorker covers every enumerated CN exactly once
// and the lifetime counters advance.
func TestStatsShape(t *testing.T) {
	x := newTestExecutor(4)
	_, st, err := x.TopK(context.Background(), Query{Terms: []string{"keyword", "search"}, K: 10, MaxCNSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 4 || len(st.JobsPerWorker) != 4 {
		t.Fatalf("want 4 workers, got %d with %d job buckets", st.Workers, len(st.JobsPerWorker))
	}
	total := 0
	for _, n := range st.JobsPerWorker {
		total += n
	}
	if total != st.CNs {
		t.Errorf("jobs per worker sum %d != %d CNs", total, st.CNs)
	}
	ev, sk, _ := x.CounterTotals()
	if int(ev) != st.Evaluated || int(sk) != st.Skipped {
		t.Errorf("lifetime counters (%d,%d) disagree with per-call stats (%d,%d)", ev, sk, st.Evaluated, st.Skipped)
	}
	postings, _ := x.CacheStats()
	if postings.Entries == 0 {
		t.Error("posting cache empty after a query")
	}
}
