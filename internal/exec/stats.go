package exec

// MergeStats combines per-shard Stats into one executor-level view, in
// the given order (the sharding coordinator passes shards 0..N-1, so the
// concatenated per-worker slices read as shard-0's workers, then
// shard-1's, ...). Counters sum; Workers is the total pool size across
// shards; ResultCacheHit and PlanCacheHit hold only when every shard
// hit (a single cold shard means real work ran); Partial is true when
// any shard was interrupted, and CertifiedBound is the maximum over the
// shards — the bound the cross-shard merge certifies its global prefix
// against. PlanKey takes the first non-empty key (shards share one plan
// cache, so the keys agree whenever more than one is set).
func MergeStats(sts []Stats) Stats {
	var out Stats
	if len(sts) == 0 {
		return out
	}
	out.ResultCacheHit = true
	out.PlanCacheHit = true
	for _, st := range sts {
		out.Workers += st.Workers
		out.JobsPerWorker = append(out.JobsPerWorker, st.JobsPerWorker...)
		if st.CNs > out.CNs {
			// Shards share the plan cache: each sees the same CN set, so
			// the count is a max, not a sum.
			out.CNs = st.CNs
		}
		out.Evaluated += st.Evaluated
		out.Skipped += st.Skipped
		out.PrefixReuses += st.PrefixReuses
		out.ResultCacheHit = out.ResultCacheHit && st.ResultCacheHit
		out.PlanCacheHit = out.PlanCacheHit && st.PlanCacheHit
		out.BindTermsCached += st.BindTermsCached
		out.BindTermsBuilt += st.BindTermsBuilt
		if out.PlanKey == "" {
			out.PlanKey = st.PlanKey
		}
		out.Partial = out.Partial || st.Partial
		if st.CertifiedBound > out.CertifiedBound {
			out.CertifiedBound = st.CertifiedBound
		}
		out.WorkerBusy = append(out.WorkerBusy, st.WorkerBusy...)
		out.WorkerIdle = append(out.WorkerIdle, st.WorkerIdle...)
		out.SkippedPerWorker = append(out.SkippedPerWorker, st.SkippedPerWorker...)
	}
	return out
}
