package exec

import (
	"context"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kwsearch/internal/cn"
	"kwsearch/internal/fmath"
	"kwsearch/internal/obs"
	"kwsearch/internal/parallel"
	"kwsearch/internal/relstore"
	"kwsearch/internal/resilience"
)

// runStats holds one pool worker's execution counters for one TopK call.
type runStats struct {
	Evaluated    int
	Skipped      int
	PrefixReuses int
	// Busy is the time spent inside evalJob; Wall is the worker's total
	// time in the pool (launch to exit).
	Busy time.Duration
	Wall time.Duration
}

// Idle returns the worker's non-evaluating time: Wall - Busy, clamped at
// zero (the two are sampled with separate clock reads).
func (s runStats) Idle() time.Duration {
	if s.Wall <= s.Busy {
		return 0
	}
	return s.Wall - s.Busy
}

// sharedTopK is the workers' common accumulator: adds re-sort with the
// deterministic cn.SortResults order and truncate to k, so the k-th score
// is monotone non-decreasing over the run — the property the pruning and
// cancellation logic rely on.
type sharedTopK struct {
	mu sync.Mutex
	k  int
	rs []cn.Result
}

func (t *sharedTopK) add(rs []cn.Result) {
	if len(rs) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rs = append(t.rs, rs...)
	cn.SortResults(t.rs)
	if len(t.rs) > t.k {
		t.rs = t.rs[:t.k]
	}
}

// kth returns the current k-th best score, or -Inf while the top-k is
// not yet full (nothing may be pruned before that).
func (t *sharedTopK) kth() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.rs) < t.k {
		return math.Inf(-1)
	}
	return t.rs[t.k-1].Score
}

func (t *sharedTopK) snapshot() []cn.Result {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]cn.Result(nil), t.rs...)
}

// dominates reports kth > bound by a genuine margin (epsilon-safe): only
// then is dropping the CN provably harmless, ties included.
func dominates(kth, bound float64) bool {
	return kth > bound && !fmath.Eq(kth, bound)
}

// certifiedPrefix keeps the leading results whose scores strictly
// dominate bound — the prefix of the full top-k an interrupted pool run
// can still prove correct: every job abandoned by cancellation had a
// bound at or below it, so no unevaluated CN can displace those entries.
// Ties with bound are dropped (an abandoned CN could produce an
// equal-score result the deterministic total order ranks ahead).
func certifiedPrefix(rs []cn.Result, bound float64) []cn.Result {
	i := 0
	for i < len(rs) && dominates(rs[i].Score, bound) {
		i++
	}
	return rs[:i]
}

// runPool executes the assigned jobs across one goroutine per worker.
// Each worker processes its jobs in descending score-bound order,
// maintains a materialized-prefix table keyed by cn.PrefixKey for
// intra-worker join reuse, skips jobs whose bound is dominated by the
// shared k-th score, and publishes a bound watermark; when every
// watermark is dominated the pool context is cancelled, stopping
// in-flight workers between prefix levels. The final top-k equals full
// serial evaluation byte for byte (see package tests).
//
// When sp is non-nil every non-empty worker gets a child span
// ("worker-<i>"), created in the launch loop before any goroutine starts
// so the span tree's shape depends only on the (deterministic) job
// assignment. The returned slice holds one runStats per worker slot,
// including empty ones.
//
// When parent ends (or a resilience.StageEval fault fires) mid-run the
// pool drains its workers and returns the certified prefix of the top-k
// together with the interrupting error: each worker records the highest
// bound it walked away from, and only results strictly dominating the
// maximum abandoned bound survive — a provable prefix of the serial
// top-k. That maximum is returned as bound so callers (Stats.
// CertifiedBound, and through it the cross-shard merge) can re-certify
// the prefix after combining it with other partial answers; it is -Inf
// when nothing was abandoned.
func (x *Executor) runPool(parent context.Context, ev *cn.Evaluator, a parallel.Assignment, k int, sp *obs.Span) ([]cn.Result, []runStats, float64, error) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	inj := resilience.From(parent)
	workers := len(a.Jobs)
	top := &sharedTopK{k: k}
	marks := make([]atomic.Uint64, workers)
	perWorker := make([]runStats, workers)
	// abandoned[w] is the highest job bound worker w gave up on without a
	// finished evaluation; written only by worker w, read after wg.Wait.
	abandoned := make([]float64, workers)
	for w := range abandoned {
		abandoned[w] = math.Inf(-1)
	}
	// injected holds the first StageEval fault error; it also fires the
	// internal cancellation so the other workers stop at a job boundary.
	var injMu sync.Mutex
	var injErr error

	// Per-worker job order: descending bound (deterministic tie-break by
	// canonical CN string) so the skip check fires as early as possible.
	ordered := make([][]parallel.Job, workers)
	bounds := make([][]float64, workers)
	for w, js := range a.Jobs {
		ordered[w] = append([]parallel.Job(nil), js...)
		sort.SliceStable(ordered[w], func(i, j int) bool {
			bi, bj := ev.Bound(ordered[w][i].CN), ev.Bound(ordered[w][j].CN)
			if !fmath.Eq(bi, bj) {
				return bi > bj
			}
			return ordered[w][i].CN.Canonical() < ordered[w][j].CN.Canonical()
		})
		bounds[w] = make([]float64, len(ordered[w]))
		for i, j := range ordered[w] {
			bounds[w][i] = ev.Bound(j.CN)
		}
		if len(bounds[w]) > 0 {
			marks[w].Store(math.Float64bits(bounds[w][0]))
		} else {
			marks[w].Store(math.Float64bits(math.Inf(-1)))
		}
	}

	// tryCancel fires the internal cancellation when the shared k-th
	// score dominates every worker's watermark: no unevaluated or
	// in-flight CN can contribute a top-k result anymore. Watermarks are
	// monotone non-increasing and kth is monotone non-decreasing, so a
	// stale read can only delay cancellation, never make it unsound.
	tryCancel := func() {
		kth := top.kth()
		if math.IsInf(kth, -1) {
			return
		}
		for w := range marks {
			if !dominates(kth, math.Float64frombits(marks[w].Load())) {
				return
			}
		}
		cancel()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		if len(ordered[w]) == 0 {
			continue
		}
		wsp := sp.Child("worker-" + strconv.Itoa(w))
		wsp.SetAttr("jobs", len(ordered[w]))
		wg.Add(1)
		go func(w int, wsp *obs.Span) {
			defer wg.Done()
			launched := time.Now()
			st := &perWorker[w]
			prefixes := map[string][][]*relstore.Tuple{}
			for ji, job := range ordered[w] {
				stop := ctx.Err()
				if stop == nil {
					if err := inj.At(ctx, resilience.StageEval); err != nil {
						injMu.Lock()
						if injErr == nil {
							injErr = err
						}
						injMu.Unlock()
						cancel()
						stop = err
					}
				}
				if stop != nil {
					st.Skipped += len(ordered[w]) - ji
					// Jobs run in descending bound order, so the first
					// unprocessed bound caps everything this worker leaves
					// behind.
					if bounds[w][ji] > abandoned[w] {
						abandoned[w] = bounds[w][ji]
					}
					break
				}
				if dominates(top.kth(), bounds[w][ji]) {
					st.Skipped++
				} else {
					t0 := time.Now()
					done := x.evalJob(ctx, ev, job.CN, prefixes, top, st)
					st.Busy += time.Since(t0)
					if done {
						tryCancel()
					} else {
						st.Skipped++ // abandoned mid-evaluation by cancellation
						if bounds[w][ji] > abandoned[w] {
							abandoned[w] = bounds[w][ji]
						}
					}
				}
				next := math.Inf(-1)
				if ji+1 < len(bounds[w]) {
					next = bounds[w][ji+1]
				}
				marks[w].Store(math.Float64bits(next))
				tryCancel()
			}
			marks[w].Store(math.Float64bits(math.Inf(-1)))
			st.Wall = time.Since(launched)
			wsp.SetAttr("evaluated", st.Evaluated)
			wsp.SetAttr("skipped", st.Skipped)
			wsp.SetAttr("prefix_reuses", st.PrefixReuses)
			wsp.SetAttr("busy", st.Busy.Round(time.Microsecond))
			wsp.SetAttr("idle", st.Idle().Round(time.Microsecond))
			wsp.End()
		}(w, wsp)
	}
	wg.Wait()

	err := parent.Err()
	if err == nil {
		err = injErr
	}
	if err != nil {
		bound := math.Inf(-1)
		for _, b := range abandoned {
			if b > bound {
				bound = b
			}
		}
		return certifiedPrefix(top.snapshot(), bound), perWorker, bound, err
	}
	return top.snapshot(), perWorker, math.Inf(-1), nil
}

// evalJob evaluates one CN with materialized-prefix reuse, checking ctx
// between prefix levels. It returns false when cancellation interrupted
// the evaluation (results discarded — they are provably below the k-th
// score whenever the internal cancellation fired).
func (x *Executor) evalJob(ctx context.Context, ev *cn.Evaluator, c *cn.CN, prefixes map[string][][]*relstore.Tuple, top *sharedTopK, st *runStats) bool {
	n := len(c.Nodes)
	start := 0
	var bindings [][]*relstore.Tuple
	for d := n - 1; d >= 1; d-- {
		if bs, ok := prefixes[c.PrefixKey(d)]; ok {
			bindings, start = bs, d
			st.PrefixReuses++
			break
		}
	}
	// A cached-but-empty prefix proves the CN joins to nothing.
	dead := start > 0 && len(bindings) == 0
	for d := start + 1; d <= n && !dead; d++ {
		if ctx.Err() != nil {
			return false
		}
		bindings = ev.EvaluatePrefix(c, bindings, d)
		if d < n {
			prefixes[c.PrefixKey(d)] = bindings
		}
		dead = len(bindings) == 0
	}
	st.Evaluated++
	if !dead {
		top.add(ev.BindingResults(c, bindings))
	}
	return true
}
