package exec

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"kwsearch/internal/resilience"
)

// TestInjectedFaultYieldsCertifiedPrefix pins the partial-results
// contract: when a StageEval fault interrupts the pool after n job
// boundaries, TopK returns exactly a prefix of the serial top-k (rendered
// byte-for-byte), flags Stats.Partial, and surfaces the fault error. With
// one worker the job order is deterministic, so every cut point n is
// reproducible.
func TestInjectedFaultYieldsCertifiedPrefix(t *testing.T) {
	boom := errors.New("injected eval fault")
	// K is far above the result count so the internal certification never
	// cancels the pool first: every cut point reaches its injection site.
	q := Query{Terms: []string{"keyword", "search"}, K: 10000, MaxCNSize: 5, Workers: 1}
	x := newTestExecutor(1)
	serial := renderResults(x.TopKSerial(q))

	// The fixture query enumerates 5 CNs, so these cut points interrupt
	// after 0..4 completed jobs — every prefix the single worker can form.
	for _, after := range []int{0, 1, 2, 3, 4} {
		in := resilience.NewInjector(1).Arm(resilience.StageEval, resilience.Fault{Err: boom, After: after})
		ctx := resilience.WithInjector(context.Background(), in)
		x.InvalidateCaches()
		rs, st, err := x.TopK(ctx, q)
		if !errors.Is(err, boom) {
			t.Fatalf("after=%d: err = %v, want injected fault", after, err)
		}
		if !st.Partial {
			t.Fatalf("after=%d: Stats.Partial not set", after)
		}
		if got := renderResults(rs); !strings.HasPrefix(serial, got) {
			t.Errorf("after=%d: partial answer is not a prefix of serial top-k\ngot:\n%sserial:\n%s",
				after, got, serial)
		}
	}

	// The interrupted runs must not have polluted the result cache: a
	// clean query recomputes and matches serial exactly.
	rs, st, err := x.TopK(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if st.ResultCacheHit {
		t.Fatal("partial answer was served from the result cache")
	}
	if got := renderResults(rs); got != serial {
		t.Errorf("clean query after faults differs from serial\ngot:\n%swant:\n%s", got, serial)
	}
}

// TestDeadlineMidEvaluationYieldsPartial drives a real deadline into the
// pool: injected per-job delays make evaluation slow enough that the
// deadline expires mid-run, and the certified prefix + typed error come
// back quickly.
func TestDeadlineMidEvaluationYieldsPartial(t *testing.T) {
	q := Query{Terms: []string{"keyword", "search"}, K: 10000, MaxCNSize: 5, Workers: 2}
	x := newTestExecutor(2)
	serial := renderResults(x.TopKSerial(q))

	// The first two evaluations per stage-hit run free, then every job
	// boundary sleeps far past the deadline: the 250ms budget is generous
	// for enumerate+prewarm (so the deadline provably lands mid-pool) and
	// hopeless against the 2s sleeps.
	in := resilience.NewInjector(1).Arm(resilience.StageEval, resilience.Fault{Delay: 2 * time.Second, After: 2})
	ctx, cancel := context.WithTimeout(resilience.WithInjector(context.Background(), in), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	rs, st, err := x.TopK(ctx, q)
	returned := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if returned > 1500*time.Millisecond {
		t.Errorf("TopK took %v to honor a 250ms deadline", returned)
	}
	if !st.Partial {
		t.Error("Stats.Partial not set on deadline")
	}
	if got := renderResults(rs); !strings.HasPrefix(serial, got) {
		t.Errorf("deadline partial answer is not a prefix of serial top-k\ngot:\n%sserial:\n%s", got, serial)
	}
}

// TestEnumerationCancellationReturnsNothing: interrupting CN enumeration
// (before any evaluation) must yield no results at all — a truncated CN
// set would silently change which answers exist.
func TestEnumerationCancellationReturnsNothing(t *testing.T) {
	boom := errors.New("injected enumerate fault")
	in := resilience.NewInjector(1).Arm(resilience.StageEnumerate, resilience.Fault{Err: boom})
	ctx := resilience.WithInjector(context.Background(), in)
	x := newTestExecutor(2)
	rs, st, err := x.TopK(ctx, Query{Terms: []string{"keyword", "search"}, K: 10, MaxCNSize: 5})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if len(rs) != 0 || st.Partial {
		t.Fatalf("cancelled enumeration returned %d results (partial=%v)", len(rs), st.Partial)
	}
}
