package exec

import (
	"context"
	"testing"
)

// TestPlanCacheHitStat pins the Stats.PlanCacheHit wiring: the first
// execution of a signature compiles (no hit), a later execution of the
// same signature reuses the compiled plan even after the value-dependent
// caches are flushed, and a full InvalidateCaches forces a recompile.
func TestPlanCacheHitStat(t *testing.T) {
	x := newTestExecutor(2)
	q := Query{Terms: []string{"keyword", "search"}, K: 5, MaxCNSize: 5}

	_, st, err := x.TopK(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanCacheHit {
		t.Fatal("cold executor claims a plan-cache hit")
	}

	x.InvalidateDataCaches() // drops postings + results, keeps plans
	_, st, err = x.TopK(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if st.ResultCacheHit {
		t.Fatal("result cache survived InvalidateDataCaches")
	}
	if !st.PlanCacheHit {
		t.Fatal("warm executor missed the plan cache")
	}

	// A different query with the same keyword→relation membership
	// signature shares the plan: that is the whole point of keying plans
	// by signature instead of by query string.
	_, st, err = x.TopK(context.Background(), Query{Terms: []string{"query", "optimization"}, K: 5, MaxCNSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !st.PlanCacheHit {
		t.Fatal("same-signature query missed the plan cache")
	}

	x.InvalidateCaches() // schema-level flush includes plans
	_, st, err = x.TopK(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanCacheHit {
		t.Fatal("plan survived InvalidateCaches")
	}
}
