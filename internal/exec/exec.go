// Package exec is the concurrent, cache-backed query-execution layer in
// front of the candidate-network machinery: the piece EMBANKS (Gupta &
// Sudarshan) and Mragyati (Sarda & Jain) argue a keyword-search engine
// needs before it can serve real traffic. It combines
//
//   - a sharded, generation-aware LRU cache (internal/cache) for
//     term→posting lookups shared across queries and for whole-query
//     top-k result sets;
//   - a worker pool that fans candidate networks out across
//     GOMAXPROCS-many goroutines using parallel.Assign's sharing-aware
//     partitioning, with per-worker materialized-prefix reuse
//     (cn.EvaluatePrefix keyed by cn.PrefixKey) so CNs placed together
//     actually share their common join work;
//   - sound top-k early termination: workers process their CNs in
//     descending score-bound order, skip CNs whose bound cannot reach the
//     shared k-th score, and a context cancellation path stops in-flight
//     workers the moment every remaining bound is dominated. The
//     returned top-k is byte-identical to full serial evaluation.
package exec

import (
	"context"
	"math"
	"runtime"
	"strconv"
	"strings"
	"time"

	"kwsearch/internal/cache"
	"kwsearch/internal/cn"
	"kwsearch/internal/invindex"
	"kwsearch/internal/obs"
	"kwsearch/internal/parallel"
	"kwsearch/internal/plan"
	"kwsearch/internal/relstore"
	"kwsearch/internal/schemagraph"
	"kwsearch/internal/text"
)

// Options configures an Executor.
type Options struct {
	// Workers is the default worker-pool size (0 = GOMAXPROCS).
	Workers int
	// FreeTables are the relations allowed as free tuple sets in CNs.
	FreeTables []string
	// PostingCacheSize bounds the term→posting cache (entries; 0 = 4096).
	PostingCacheSize int
	// ResultCacheSize bounds the whole-query result cache (0 = 256).
	ResultCacheSize int
	// CacheShards stripes both caches (0 = 16).
	CacheShards int
	// Plans is the candidate-network plan cache consulted before
	// enumeration. Leave nil to have the executor build a private one
	// (PlanCacheSize entries, cold compilation parallelized across
	// Workers); core.NewRelational passes a cache shared with the
	// engine's serial path so both hit the same compiled plans.
	Plans *plan.Cache
	// PlanCacheSize bounds the private plan cache built when Plans is
	// nil (0 = 128).
	PlanCacheSize int
	// Binder is the shared keyword-binding layer that turns query terms
	// into R^Q tuple sets from posting lists, caching per-term bindings
	// and join lookups across queries. Leave nil to have the executor
	// build a private one (BindCacheSize terms); core.NewRelational
	// passes a binder shared with the engine's serial path so both hit
	// the same term bindings.
	Binder *cn.Binder
	// BindCacheSize bounds the private binder's per-term cache built
	// when Binder is nil (0 = 1024).
	BindCacheSize int
	// Metrics, when non-nil, receives the executor's lifetime counters and
	// both cache counter sets (see Instrument). Leaving it nil costs one
	// branch per counter event.
	Metrics *obs.Registry
	// Partition, when non-nil, restricts every evaluation to the results
	// whose owner tuple (CN node 0's binding) it admits — the shard
	// engines of internal/shard each run one executor with their slice of
	// the tuple-ID space here. Partitioned executors must not share a
	// result cache with differently-partitioned ones (the result-cache
	// key carries no partition identity), which is why shard engines get
	// private executors over the shared binder and plan cache.
	Partition cn.Partition
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.PostingCacheSize <= 0 {
		o.PostingCacheSize = 4096
	}
	if o.ResultCacheSize <= 0 {
		o.ResultCacheSize = 256
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	return o
}

// Query is one top-k request.
type Query struct {
	// Terms are the raw keywords (normalized internally).
	Terms []string
	// K bounds the result count (<=0 means 10).
	K int
	// MaxCNSize bounds candidate-network size (<=0 means 5).
	MaxCNSize int
	// Workers overrides the executor's pool size for this query (0 =
	// executor default, 1 = serial in-process).
	Workers int
	// Trace, when non-nil, receives child spans for the execution stages
	// (enumerate, evaluate with one child per pool worker) plus attributes
	// such as the result-cache outcome. Nil disables tracing at the cost
	// of one branch per span site.
	Trace *obs.Span
}

func (q Query) withDefaults(x *Executor) Query {
	if q.K <= 0 {
		q.K = 10
	}
	if q.MaxCNSize <= 0 {
		q.MaxCNSize = 5
	}
	if q.Workers <= 0 {
		q.Workers = x.opts.Workers
	}
	return q
}

// Stats describes how one TopK call was executed.
type Stats struct {
	// Workers is the pool size used.
	Workers int
	// JobsPerWorker counts the CN jobs placed on each worker.
	JobsPerWorker []int
	// CNs is the number of candidate networks enumerated.
	CNs int
	// Evaluated and Skipped partition the CNs into those actually joined
	// and those pruned by the shared top-k bound (or abandoned after
	// cancellation).
	Evaluated int
	Skipped   int
	// PrefixReuses counts evaluation levels served from a worker's
	// materialized-prefix table instead of being recomputed.
	PrefixReuses int
	// ResultCacheHit reports that the whole answer came from the result
	// cache and nothing below it ran.
	ResultCacheHit bool
	// PlanCacheHit reports that the candidate-network set came from the
	// plan cache and enumeration was skipped entirely.
	PlanCacheHit bool
	// BindTermsCached and BindTermsBuilt split the query's terms by
	// whether their posting-derived bindings came from the shared
	// binder's cache or were built fresh (a warm binder makes the whole
	// bind stage a merge of cached slices).
	BindTermsCached int
	BindTermsBuilt  int
	// PlanKey is the plan-cache key the query compiled under (namespace +
	// schema fingerprint + membership signature + size bounds) — the join
	// key between a query exemplar and plan-cache churn. Empty when the
	// query never reached the enumerate stage.
	PlanKey string
	// Partial reports that the run was interrupted (deadline, cancellation
	// or an injected fault) and the returned results are the certified
	// prefix of the full top-k rather than the whole answer. Partial
	// answers are never cached.
	Partial bool
	// CertifiedBound is, for a Partial run, the highest score bound any
	// abandoned CN could still reach: every returned result strictly
	// dominates it, and no unevaluated work can exceed it. It is what the
	// sharding coordinator needs to certify a cross-shard merge — the
	// global prefix is cut at the maximum CertifiedBound over the partial
	// shards. Clamped at 0 (scores are strictly positive, so the clamp
	// never weakens the certificate) to keep the field JSON-safe; 0 on
	// complete runs.
	CertifiedBound float64
	// WorkerBusy is, per pool worker, the time spent inside CN evaluation;
	// WorkerIdle is the rest of that worker's wall time in the pool
	// (waiting on the shared top-k lock, bound checks, scheduling). Both
	// are indexed like JobsPerWorker.
	WorkerBusy []time.Duration
	WorkerIdle []time.Duration
	// SkippedPerWorker splits Skipped by pool worker.
	SkippedPerWorker []int
}

// Executor is a reusable, concurrency-safe execution layer over one
// database + index pair. Construct with New; methods may be called from
// multiple goroutines.
type Executor struct {
	db   *relstore.DB
	ix   *invindex.Index
	sg   *schemagraph.Graph
	opts Options

	postings *cache.Cache[[]invindex.Posting]
	results  *cache.Cache[[]cn.Result]
	plans    *plan.Cache
	binder   *cn.Binder

	evaluated *obs.Counter
	skipped   *obs.Counter
	reuses    *obs.Counter
}

// New builds an executor. FreeTables defaults to the text-free link
// relations when left nil (matching core.NewRelational's policy is the
// caller's concern).
func New(db *relstore.DB, ix *invindex.Index, opts Options) *Executor {
	opts = opts.withDefaults()
	x := &Executor{
		db:        db,
		ix:        ix,
		sg:        schemagraph.FromDB(db),
		opts:      opts,
		postings:  cache.New[[]invindex.Posting](opts.PostingCacheSize, opts.CacheShards),
		results:   cache.New[[]cn.Result](opts.ResultCacheSize, opts.CacheShards),
		evaluated: &obs.Counter{},
		skipped:   &obs.Counter{},
		reuses:    &obs.Counter{},
	}
	x.plans = opts.Plans
	if x.plans == nil {
		x.plans = plan.New(plan.Options{
			Size:    opts.PlanCacheSize,
			Shards:  opts.CacheShards,
			Workers: opts.Workers,
			Metrics: opts.Metrics,
		})
	}
	x.binder = opts.Binder
	if x.binder == nil {
		x.binder = cn.NewBinder(db, ix, cn.BinderOptions{
			TermCacheSize: opts.BindCacheSize,
			CacheShards:   opts.CacheShards,
			Metrics:       opts.Metrics,
		})
	}
	if opts.Metrics != nil {
		x.Instrument(opts.Metrics)
	}
	return x
}

// Instrument surfaces the executor's lifetime counters in reg as
// "exec.evaluated", "exec.skipped" and "exec.prefix_reuses", and both
// cache counter sets under "cache.postings.*" and "cache.results.*".
// Call before concurrent use (New does, when Options.Metrics is set).
func (x *Executor) Instrument(reg *obs.Registry) {
	x.evaluated = reg.Attach("exec.evaluated", x.evaluated)
	x.skipped = reg.Attach("exec.skipped", x.skipped)
	x.reuses = reg.Attach("exec.prefix_reuses", x.reuses)
	x.postings.Instrument(reg, "cache.postings")
	x.results.Instrument(reg, "cache.results")
}

// Postings is the cached term→posting lookup: the first access per term
// goes to the index, later ones (from any query) hit the sharded cache.
func (x *Executor) Postings(term string) []invindex.Posting {
	norm := text.Normalize(term)
	if norm == "" {
		return nil
	}
	return x.postings.GetOrCompute(norm, func() []invindex.Posting {
		return x.ix.Postings(norm)
	})
}

// InvalidateCaches bumps every cache generation — postings, results,
// term bindings and compiled plans. Call after growing the index or
// mutating the database (a schema change also changes the plan keys'
// fingerprint, but the gen bump reclaims the dead entries' LRU capacity
// immediately).
func (x *Executor) InvalidateCaches() {
	x.postings.Invalidate()
	x.results.Invalidate()
	x.binder.Invalidate()
	x.plans.Invalidate()
}

// InvalidateDataCaches bumps only the value-dependent caches (postings,
// results and the binder's term bindings + join lookups), keeping
// compiled plans warm. Call it after data growth under a fixed schema.
func (x *Executor) InvalidateDataCaches() {
	x.postings.Invalidate()
	x.results.Invalidate()
	x.binder.Invalidate()
}

// InvalidateResults bumps only the result cache. Benchmarks use it to
// measure the warm steady state of a serving engine — distinct queries
// over unchanged data, where postings, term bindings and plans are all
// legitimately warm and only the whole-answer cache misses.
func (x *Executor) InvalidateResults() {
	x.results.Invalidate()
}

// CacheStats returns the posting- and result-cache counters.
func (x *Executor) CacheStats() (postings, results cache.Stats) {
	return x.postings.Stats(), x.results.Stats()
}

// Plans returns the executor's plan cache (shared with the engine when
// core.NewRelational wired it).
func (x *Executor) Plans() *plan.Cache { return x.plans }

// Binder returns the executor's binding layer (shared with the engine
// when core.NewRelational wired it).
func (x *Executor) Binder() *cn.Binder { return x.binder }

// BinderStats returns the binder's term-cache counters.
func (x *Executor) BinderStats() cache.Stats { return x.binder.Stats() }

// SetPlans replaces the executor's plan cache handle — used by
// core.Engine.SetPlanNamespace to re-namespace a shared cache. Call
// before concurrent use; the executor does not synchronize the swap.
func (x *Executor) SetPlans(p *plan.Cache) {
	if p != nil {
		x.plans = p
	}
}

// normTerms normalizes and drops empty tokens.
func normTerms(terms []string) []string {
	var out []string
	for _, t := range terms {
		if n := text.Normalize(t); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// resultCacheKey identifies a query in the result cache. Worker count is
// excluded deliberately: the answer is execution-plan independent.
func resultCacheKey(terms []string, k, maxCN int) string {
	return strings.Join(terms, " ") + "|k=" + strconv.Itoa(k) + "|cn=" + strconv.Itoa(maxCN)
}

// copyResults guards cached slices against caller mutation.
func copyResults(rs []cn.Result) []cn.Result {
	return append([]cn.Result(nil), rs...)
}

// TopK answers q with the worker pool, consulting the result cache
// first. The returned slice is the caller's to keep. Cancelling ctx (or
// an armed resilience.Injector stage firing) aborts the evaluation and
// returns the interrupting error; when the pool was already running, the
// certified prefix of the top-k comes back with it (Stats.Partial set)
// so callers can serve a sound partial answer. Interrupted runs are
// never cached.
func (x *Executor) TopK(ctx context.Context, q Query) ([]cn.Result, Stats, error) {
	q = q.withDefaults(x)
	sp := q.Trace
	st := Stats{Workers: q.Workers}
	terms := normTerms(q.Terms)
	if len(terms) == 0 {
		return nil, st, nil
	}

	key := resultCacheKey(terms, q.K, q.MaxCNSize)
	if rs, ok := x.results.Get(key); ok {
		st.ResultCacheHit = true
		sp.SetAttr("result_cache_hit", true)
		return copyResults(rs), st, nil
	}
	sp.SetAttr("result_cache_hit", false)

	// AND-semantics fast path via the posting cache: a term with no
	// postings at all makes total coverage impossible, so skip building
	// the evaluator (a full-database scan) outright.
	for _, t := range terms {
		if len(x.Postings(t)) == 0 {
			x.results.Put(key, nil)
			sp.SetAttr("empty_term", t)
			return nil, st, nil
		}
	}

	// Binding resolves each keyword to its per-relation tuple sets R^Q
	// through the shared binder: per-term bindings come from posting
	// lists (O(matched tuples)) and are cached across queries, so a warm
	// binder reduces the stage to a merge of cached slices. It keeps its
	// own span rather than hiding inside enumerate (which a warm plan
	// reduces to a cache probe).
	bsp := sp.Child("bind")
	binding := x.binder.BindTraced(terms, bsp)
	ev := cn.NewEvaluatorFrom(x.db, x.ix, binding).Restrict(x.opts.Partition)
	kwTables := binding.KeywordTables()
	bsp.SetAttr("keyword_tables", len(kwTables))
	bsp.End()
	st.BindTermsCached = binding.TermsCached()
	st.BindTermsBuilt = binding.TermsBuilt()

	// The enumerate stage goes through the plan cache: warm signatures
	// skip enumeration entirely, cold ones compile (in parallel when the
	// cache was built with Workers > 1) and are cached for every later
	// query with the same schema + membership signature.
	esp := sp.Child("enumerate")
	ps, planHit, err := x.plans.Get(ctx, x.sg, cn.EnumerateOptions{
		MaxSize:       q.MaxCNSize,
		KeywordTables: kwTables,
		FreeTables:    x.opts.FreeTables,
	})
	if err != nil {
		// No partial answer is possible before the CN set exists.
		esp.SetAttr("cancelled", true)
		esp.End()
		return nil, st, err
	}
	cns := ps.CNs() // immutable, share-safe: evaluation is read-only
	st.CNs = len(cns)
	st.PlanCacheHit = planHit
	st.PlanKey = ps.Key()
	esp.SetAttr("cns", len(cns))
	esp.SetAttr("plan_cached", planHit)
	esp.End()
	if len(cns) == 0 {
		x.results.Put(key, nil)
		return nil, st, nil
	}

	jobs := make([]parallel.Job, len(cns))
	for i, c := range cns {
		jobs[i] = parallel.Decompose(c, ev)
	}
	assignment := parallel.Assign(jobs, q.Workers)
	for _, js := range assignment.Jobs {
		st.JobsPerWorker = append(st.JobsPerWorker, len(js))
	}

	if err := ev.PrewarmCtx(ctx, cns); err != nil {
		return nil, st, err
	}
	// Evaluation is read-only from here on.

	vsp := sp.Child("evaluate")
	vsp.SetAttr("workers", len(assignment.Jobs))
	top, perWorker, abandonedBound, err := x.runPool(ctx, ev, assignment, q.K, vsp)
	for _, ws := range perWorker {
		st.Evaluated += ws.Evaluated
		st.Skipped += ws.Skipped
		st.PrefixReuses += ws.PrefixReuses
		st.WorkerBusy = append(st.WorkerBusy, ws.Busy)
		st.WorkerIdle = append(st.WorkerIdle, ws.Idle())
		st.SkippedPerWorker = append(st.SkippedPerWorker, ws.Skipped)
	}
	vsp.SetAttr("evaluated", st.Evaluated)
	vsp.SetAttr("skipped", st.Skipped)
	vsp.SetAttr("prefix_reuses", st.PrefixReuses)
	x.evaluated.Add(uint64(st.Evaluated))
	x.skipped.Add(uint64(st.Skipped))
	x.reuses.Add(uint64(st.PrefixReuses))
	if err != nil {
		st.Partial = true
		st.CertifiedBound = math.Max(0, abandonedBound)
		vsp.SetAttr("partial", true)
		vsp.SetAttr("certified", len(top))
		vsp.End()
		return top, st, err // certified prefix; never cached
	}
	vsp.End()

	x.results.Put(key, copyResults(top))
	return top, st, nil
}

// TopKSerial is the reference path: full evaluation of every CN on the
// calling goroutine, no bound pruning, no caches — binding included,
// which comes from the full-scan reference binding rather than the
// binder. The worker pool's answer is asserted byte-identical to this
// in the package tests, making every such test a continuous
// binder-vs-scan equivalence check as well.
func (x *Executor) TopKSerial(q Query) []cn.Result {
	q = q.withDefaults(x)
	terms := normTerms(q.Terms)
	if len(terms) == 0 {
		return nil
	}
	ev := cn.NewScanEvaluator(x.db, x.ix, terms).Restrict(x.opts.Partition)
	cns := cn.Enumerate(x.sg, cn.EnumerateOptions{
		MaxSize:       q.MaxCNSize,
		KeywordTables: ev.KeywordTables(),
		FreeTables:    x.opts.FreeTables,
	})
	return cn.TopKNaive(ev, cns, q.K)
}

// CounterTotals returns the lifetime evaluated/skipped/prefix-reuse
// counters (across all TopK calls).
func (x *Executor) CounterTotals() (evaluated, skipped, prefixReuses uint64) {
	return x.evaluated.Value(), x.skipped.Value(), x.reuses.Value()
}
