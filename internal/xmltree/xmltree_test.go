package xmltree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDeweyCompare(t *testing.T) {
	cases := []struct {
		a, b Dewey
		want int
	}{
		{Dewey{}, Dewey{}, 0},
		{Dewey{}, Dewey{0}, -1},
		{Dewey{0}, Dewey{}, 1},
		{Dewey{0, 1}, Dewey{0, 2}, -1},
		{Dewey{1}, Dewey{0, 5}, 1},
		{Dewey{0, 1, 2}, Dewey{0, 1, 2}, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDeweyAncestorAndLCA(t *testing.T) {
	a := Dewey{0, 1}
	b := Dewey{0, 1, 3}
	c := Dewey{0, 2}
	if !a.IsAncestorOrSelf(b) {
		t.Errorf("%v should be ancestor of %v", a, b)
	}
	if a.IsAncestorOrSelf(c) {
		t.Errorf("%v should not be ancestor of %v", a, c)
	}
	if !a.IsAncestorOrSelf(a) {
		t.Errorf("ancestor-or-self must include self")
	}
	if got := b.LCA(c); !got.Equal(Dewey{0}) {
		t.Errorf("LCA(%v,%v) = %v, want [0]", b, c, got)
	}
	if got := a.LCA(b); !got.Equal(a) {
		t.Errorf("LCA(ancestor,descendant) = %v, want %v", got, a)
	}
	if s := (Dewey{}).String(); s != "ε" {
		t.Errorf("root string = %q", s)
	}
	if s := (Dewey{1, 0, 2}).String(); s != "1.0.2" {
		t.Errorf("string = %q", s)
	}
}

// Property: LCA is the unique common ancestor that both prefixes reach, and
// it is an ancestor-or-self of both inputs.
func TestDeweyLCAProperties(t *testing.T) {
	gen := func(seed int64) (Dewey, Dewey) {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Dewey {
			d := make(Dewey, rng.Intn(6))
			for i := range d {
				d[i] = rng.Intn(3)
			}
			return d
		}
		return mk(), mk()
	}
	f := func(seed int64) bool {
		a, b := gen(seed)
		l := a.LCA(b)
		if !l.IsAncestorOrSelf(a) || !l.IsAncestorOrSelf(b) {
			return false
		}
		// Extending the LCA by one more component of a (if any) must not
		// remain an ancestor of b unless the components agree.
		if len(l) < len(a) && len(l) < len(b) && a[len(l)] == b[len(l)] {
			return false // LCA was not maximal
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

const confXML = `
<conf>
  <name>SIGMOD</name>
  <year>2007</year>
  <paper>
    <title>keyword</title>
    <author>Mark</author>
    <author>Chen</author>
  </paper>
  <paper>
    <title>RDF</title>
    <author>Mark</author>
    <author>Zhang</author>
  </paper>
</conf>`

func TestParseStructure(t *testing.T) {
	tr, err := ParseString(confXML)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Label != "conf" {
		t.Fatalf("root = %s", tr.Root.Label)
	}
	papers := tr.NodesByLabel("paper")
	if len(papers) != 2 {
		t.Fatalf("papers = %d, want 2", len(papers))
	}
	if got := papers[0].Dewey.String(); got != "2" {
		t.Errorf("first paper dewey = %s, want 2", got)
	}
	if got := papers[1].Children[1].LabelPath(); got != "/conf/paper/author" {
		t.Errorf("label path = %s", got)
	}
	// Preorder IDs must be dense and in document order.
	for i, n := range tr.Nodes() {
		if int(n.ID) != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
		if i > 0 && tr.Nodes()[i-1].Dewey.Compare(n.Dewey) >= 0 {
			t.Fatalf("dewey order violated at %d", i)
		}
	}
	if tr.MaxDepth() != 2 {
		t.Errorf("max depth = %d, want 2", tr.MaxDepth())
	}
}

func TestParseAttributesAndErrors(t *testing.T) {
	tr, err := ParseString(`<movie year="1980"><title>Shining</title></movie>`)
	if err != nil {
		t.Fatal(err)
	}
	year := tr.NodesByLabel("@year")
	if len(year) != 1 || year[0].Value != "1980" {
		t.Fatalf("attribute node = %+v", year)
	}
	if _, err := ParseString(``); err == nil {
		t.Errorf("empty document must error")
	}
	if _, err := ParseString(`<a></a><b></b>`); err == nil {
		t.Errorf("multiple roots must error")
	}
	if _, err := ParseString(`<a><b></a>`); err == nil {
		t.Errorf("unbalanced document must error")
	}
}

func TestByDeweyRoundTrip(t *testing.T) {
	tr, err := ParseString(confXML)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes() {
		if got := tr.ByDewey(n.Dewey); got != n {
			t.Fatalf("ByDewey(%v) = %v, want %v", n.Dewey, got, n)
		}
	}
	if tr.ByDewey(Dewey{99}) != nil {
		t.Errorf("ByDewey out of range should be nil")
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder("auctions")
	a1 := b.Child(b.Root(), "open_auction", "")
	b.Child(a1, "seller", "Tom")
	b.Child(a1, "buyer", "Peter")
	tr := b.Freeze()
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if got := tr.Node(2).LabelPath(); got != "/auctions/open_auction/seller" {
		t.Errorf("path = %s", got)
	}
	paths := tr.LabelPaths()
	want := []string{"/auctions", "/auctions/open_auction",
		"/auctions/open_auction/buyer", "/auctions/open_auction/seller"}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("LabelPaths = %v", paths)
	}
}

func TestSubtreeText(t *testing.T) {
	tr, err := ParseString(confXML)
	if err != nil {
		t.Fatal(err)
	}
	paper := tr.NodesByLabel("paper")[0]
	if got := SubtreeText(paper); got != "keyword Mark Chen" {
		t.Errorf("SubtreeText = %q", got)
	}
	if got := len(Subtree(paper)); got != 4 {
		t.Errorf("Subtree size = %d, want 4", got)
	}
}

func TestIndexLookup(t *testing.T) {
	tr, err := ParseString(confXML)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(tr)
	marks := ix.Lookup("Mark")
	if len(marks) != 2 {
		t.Fatalf("Mark matches %d nodes, want 2", len(marks))
	}
	for i := 1; i < len(marks); i++ {
		if marks[i-1].ID >= marks[i].ID {
			t.Fatalf("postings not in document order")
		}
	}
	// Label matching: "paper" matches the two paper elements.
	papers := ix.Lookup("paper")
	if len(papers) != 2 {
		t.Fatalf("paper matches %d nodes, want 2", len(papers))
	}
	if ix.DocFreq("sigmod") != 1 {
		t.Errorf("DocFreq(sigmod) = %d, want 1", ix.DocFreq("sigmod"))
	}
	if got := ix.Lookup("NoSuchTerm"); got != nil {
		t.Errorf("unknown term should yield nil")
	}
	if len(ix.Terms()) == 0 {
		t.Errorf("Terms should not be empty")
	}
	if ix.Tree() != tr {
		t.Errorf("Tree accessor broken")
	}
}
