package xmltree

import (
	"sort"

	"kwsearch/internal/text"
)

// Index maps keywords to the nodes that contain them, in document order.
// A node matches a keyword if the keyword appears among the tokens of its
// Value, or equals its (lower-cased) Label — keyword queries may name tag
// names ("paper, Mark") as well as content.
type Index struct {
	tree     *Tree
	postings map[string][]*Node
}

// NewIndex builds the keyword index of t.
func NewIndex(t *Tree) *Index {
	ix := &Index{tree: t, postings: make(map[string][]*Node)}
	for _, n := range t.Nodes() {
		seen := map[string]bool{}
		for _, tok := range text.Tokenize(n.Value) {
			if !seen[tok] {
				seen[tok] = true
				ix.postings[tok] = append(ix.postings[tok], n)
			}
		}
		if lbl := text.Normalize(n.Label); lbl != "" && !seen[lbl] {
			ix.postings[lbl] = append(ix.postings[lbl], n)
		}
	}
	// Nodes were visited in document order, so postings are sorted already;
	// assert the invariant cheaply in case of future edits.
	for _, list := range ix.postings {
		if !sort.SliceIsSorted(list, func(i, j int) bool { return list[i].ID < list[j].ID }) {
			sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
		}
	}
	return ix
}

// Tree returns the indexed tree.
func (ix *Index) Tree() *Tree { return ix.tree }

// Lookup returns the matching nodes for the (normalized) keyword, in
// document order. The slice is shared; callers must not mutate it.
func (ix *Index) Lookup(keyword string) []*Node {
	return ix.postings[text.Normalize(keyword)]
}

// Terms returns all indexed terms, sorted.
func (ix *Index) Terms() []string {
	out := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// DocFreq returns the number of nodes containing the keyword.
func (ix *Index) DocFreq(keyword string) int { return len(ix.Lookup(keyword)) }
