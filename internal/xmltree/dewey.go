// Package xmltree models XML documents as labeled trees with Dewey
// identifiers — the substrate for the XML keyword-search algorithms the
// tutorial surveys (SLCA, ELCA, XSeek, XReal, snippets, clustering).
package xmltree

import (
	"strconv"
	"strings"
)

// Dewey is a Dewey identifier: the child-ordinal path from the root. The
// root's Dewey is the empty path. Dewey order equals document order, and
// prefix containment equals the ancestor-or-self relation — the two
// properties the stack-based XML KWS algorithms rely on.
type Dewey []int

// Compare orders Dewey IDs in document order: -1 if d precedes o, 0 if
// equal, 1 if d follows o. An ancestor precedes its descendants.
func (d Dewey) Compare(o Dewey) int {
	n := len(d)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if d[i] != o[i] {
			if d[i] < o[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(d) < len(o):
		return -1
	case len(d) > len(o):
		return 1
	}
	return 0
}

// IsAncestorOrSelf reports whether d is a prefix of o.
func (d Dewey) IsAncestorOrSelf(o Dewey) bool {
	if len(d) > len(o) {
		return false
	}
	for i := range d {
		if d[i] != o[i] {
			return false
		}
	}
	return true
}

// LCA returns the longest common prefix of d and o: the Dewey ID of their
// lowest common ancestor.
func (d Dewey) LCA(o Dewey) Dewey {
	n := len(d)
	if len(o) < n {
		n = len(o)
	}
	i := 0
	for i < n && d[i] == o[i] {
		i++
	}
	out := make(Dewey, i)
	copy(out, d[:i])
	return out
}

// Equal reports component-wise equality.
func (d Dewey) Equal(o Dewey) bool { return d.Compare(o) == 0 }

// Child returns d extended by ordinal i.
func (d Dewey) Child(i int) Dewey {
	out := make(Dewey, len(d)+1)
	copy(out, d)
	out[len(d)] = i
	return out
}

// String renders "1.0.2"; the root renders as "ε".
func (d Dewey) String() string {
	if len(d) == 0 {
		return "ε"
	}
	parts := make([]string, len(d))
	for i, c := range d {
		parts[i] = strconv.Itoa(c)
	}
	return strings.Join(parts, ".")
}
