package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// NodeID is the preorder number of a node, which equals its document-order
// position.
type NodeID int32

// Node is one element (or attribute pseudo-element) of the tree.
type Node struct {
	ID       NodeID
	Parent   *Node
	Children []*Node
	// Label is the element tag (attributes are modeled as child elements
	// labeled "@name").
	Label string
	// Value is the concatenated character data directly under the node.
	Value string
	Dewey Dewey
	Depth int
}

// IsLeaf reports whether the node has no element children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// LabelPath renders "/conf/paper/title" — the root-to-node label path used
// for structure inference (slides 27, 36).
func (n *Node) LabelPath() string {
	var labels []string
	for cur := n; cur != nil; cur = cur.Parent {
		labels = append(labels, cur.Label)
	}
	var b strings.Builder
	for i := len(labels) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(labels[i])
	}
	return b.String()
}

// Tree is a frozen XML tree: node IDs, Dewey IDs and depths are assigned.
type Tree struct {
	Root  *Node
	nodes []*Node
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.nodes) }

// Nodes returns all nodes in document (preorder) order. The slice is
// shared; callers must not mutate it.
func (t *Tree) Nodes() []*Node { return t.nodes }

// Node resolves a NodeID.
func (t *Tree) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(t.nodes) {
		return nil
	}
	return t.nodes[id]
}

// ByDewey finds the node with exactly the given Dewey ID, or nil.
func (t *Tree) ByDewey(d Dewey) *Node {
	cur := t.Root
	for _, ord := range d {
		if cur == nil || ord < 0 || ord >= len(cur.Children) {
			return nil
		}
		cur = cur.Children[ord]
	}
	return cur
}

// NodesByLabel returns all nodes with the given label, in document order.
func (t *Tree) NodesByLabel(label string) []*Node {
	var out []*Node
	for _, n := range t.nodes {
		if n.Label == label {
			out = append(out, n)
		}
	}
	return out
}

// LabelPaths returns the distinct label paths of the tree, sorted — the
// "all the label paths" candidate structures of slide 27.
func (t *Tree) LabelPaths() []string {
	seen := map[string]bool{}
	for _, n := range t.nodes {
		seen[n.LabelPath()] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// MaxDepth returns the depth of the deepest node (root depth is 0).
func (t *Tree) MaxDepth() int {
	max := 0
	for _, n := range t.nodes {
		if n.Depth > max {
			max = n.Depth
		}
	}
	return max
}

// Subtree returns root and all its descendants in document order.
func Subtree(root *Node) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}

// SubtreeText concatenates the values in root's subtree, in document order.
func SubtreeText(root *Node) string {
	var b strings.Builder
	for _, n := range Subtree(root) {
		if n.Value == "" {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(n.Value)
	}
	return b.String()
}

// Builder assembles a tree programmatically; Freeze assigns IDs.
type Builder struct {
	root *Node
}

// NewBuilder starts a tree with the given root label.
func NewBuilder(rootLabel string) *Builder {
	return &Builder{root: &Node{Label: rootLabel}}
}

// Root returns the root node under construction.
func (b *Builder) Root() *Node { return b.root }

// Child appends a child with the given label and value under parent and
// returns it.
func (b *Builder) Child(parent *Node, label, value string) *Node {
	n := &Node{Label: label, Value: value, Parent: parent}
	parent.Children = append(parent.Children, n)
	return n
}

// Freeze assigns preorder IDs, Dewey IDs and depths, and returns the tree.
// The builder must not be reused afterwards.
func (b *Builder) Freeze() *Tree {
	t := &Tree{Root: b.root}
	var walk func(n *Node, dewey Dewey, depth int)
	walk = func(n *Node, dewey Dewey, depth int) {
		n.ID = NodeID(len(t.nodes))
		n.Dewey = dewey
		n.Depth = depth
		t.nodes = append(t.nodes, n)
		for i, c := range n.Children {
			walk(c, dewey.Child(i), depth+1)
		}
	}
	walk(b.root, Dewey{}, 0)
	return t
}

// Parse reads an XML document into a Tree. Attributes become child nodes
// labeled "@name"; character data is concatenated into the enclosing
// element's Value.
func Parse(r io.Reader) (*Tree, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %w", err)
		}
		switch el := tok.(type) {
		case xml.StartElement:
			n := &Node{Label: el.Name.Local}
			for _, attr := range el.Attr {
				a := &Node{Label: "@" + attr.Name.Local, Value: attr.Value, Parent: n}
				n.Children = append(n.Children, a)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: multiple root elements")
				}
				root = n
			} else {
				top := stack[len(stack)-1]
				n.Parent = top
				top.Children = append(top.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %s", el.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				text := strings.TrimSpace(string(el))
				if text != "" {
					top := stack[len(stack)-1]
					if top.Value != "" {
						top.Value += " "
					}
					top.Value += text
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: empty document")
	}
	b := &Builder{root: root}
	return b.Freeze(), nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Tree, error) { return Parse(strings.NewReader(s)) }
