// Package xreal infers the most likely *search-for node type* of an XML
// keyword query from data statistics (XReal, Bao et al. ICDE'09, slides
// 37-38): candidate types are label paths; a type scores by how many of
// its instances contain each query keyword, with a depth-reduction factor,
// and types that cannot cover every keyword score zero.
package xreal

import (
	"math"
	"sort"

	"kwsearch/internal/text"
	"kwsearch/internal/xmltree"
)

// TypeScore is one candidate return type with its confidence.
type TypeScore struct {
	// Path is the label path identifying the node type, e.g. /bib/conf/paper.
	Path  string
	Score float64
}

// Options tunes the inference.
type Options struct {
	// DepthFactor r in (0,1] discounts deep types: score is multiplied by
	// r^depth. The paper's default is 0.8.
	DepthFactor float64
	// MinInstances skips types with fewer instances (noise guard).
	MinInstances int
}

// DefaultOptions mirrors the paper's configuration.
func DefaultOptions() Options { return Options{DepthFactor: 0.8, MinInstances: 1} }

// InferReturnType ranks the node types of t by
//
//	score(T) = Πₖ ln(1 + f_k(T)) · r^depth(T)
//
// where f_k(T) counts instances of T whose subtree contains keyword k.
// Types missing any keyword entirely score 0 and are omitted ("T must have
// the potential to match all query keywords"). Results are sorted by
// descending score.
func InferReturnType(ix *xmltree.Index, terms []string, opts Options) []TypeScore {
	if opts.DepthFactor <= 0 || opts.DepthFactor > 1 {
		opts.DepthFactor = 0.8
	}
	norm := make([]string, 0, len(terms))
	for _, t := range terms {
		if n := text.Normalize(t); n != "" {
			norm = append(norm, n)
		}
	}
	if len(norm) == 0 {
		return nil
	}
	t := ix.Tree()

	// Instances and per-keyword covering counts per label path.
	instances := map[string]int{}
	depth := map[string]int{}
	cover := make(map[string][]int) // path -> per-term instance counts
	lists := make([][]*xmltree.Node, len(norm))
	for i, term := range norm {
		lists[i] = ix.Lookup(term)
		if len(lists[i]) == 0 {
			return nil
		}
	}
	for _, n := range t.Nodes() {
		p := n.LabelPath()
		instances[p]++
		depth[p] = n.Depth
		counts, ok := cover[p]
		if !ok {
			counts = make([]int, len(norm))
			cover[p] = counts
		}
		for i, list := range lists {
			if hasMatchInSubtree(list, n.Dewey) {
				counts[i]++
			}
		}
	}

	var out []TypeScore
	for p, counts := range cover {
		if instances[p] < opts.MinInstances {
			continue
		}
		score := math.Pow(opts.DepthFactor, float64(depth[p]))
		ok := true
		for _, c := range counts {
			if c == 0 {
				ok = false
				break
			}
			score *= math.Log(1 + float64(c))
		}
		if !ok {
			continue
		}
		out = append(out, TypeScore{Path: p, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Path < out[j].Path
	})
	return out
}

func hasMatchInSubtree(list []*xmltree.Node, d xmltree.Dewey) bool {
	i := sort.Search(len(list), func(i int) bool {
		return list[i].Dewey.Compare(d) >= 0
	})
	return i < len(list) && d.IsAncestorOrSelf(list[i].Dewey)
}

// NodeScore scores one instance of the chosen return type for ranking:
// leaf nodes score by content TF, internal nodes aggregate their children
// with a damping factor (the XReal instance scoring of slide 38).
func NodeScore(ix *xmltree.Index, n *xmltree.Node, terms []string) float64 {
	norm := make([]string, 0, len(terms))
	for _, t := range terms {
		if s := text.Normalize(t); s != "" {
			norm = append(norm, s)
		}
	}
	var rec func(n *xmltree.Node) float64
	rec = func(n *xmltree.Node) float64 {
		s := 0.0
		toks := text.Tokenize(n.Value)
		for _, term := range norm {
			for _, tok := range toks {
				if tok == term {
					s++
				}
			}
		}
		for _, c := range n.Children {
			s += 0.8 * rec(c)
		}
		return s
	}
	return rec(n)
}
