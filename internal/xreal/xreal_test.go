package xreal

import (
	"strings"
	"testing"

	"kwsearch/internal/dataset"
	"kwsearch/internal/xmltree"
)

// slide37Tree builds a bibliography where Widom-XML papers concentrate in
// conferences: 2 conf papers match, 1 journal paper matches, phdthesis has
// no XML at all.
func slide37Tree() *xmltree.Tree {
	b := xmltree.NewBuilder("bib")
	conf := b.Child(b.Root(), "conf", "")
	for _, ti := range []string{"XML streams", "XML views", "Datalog"} {
		p := b.Child(conf, "paper", "")
		b.Child(p, "title", ti)
		if strings.Contains(ti, "XML") {
			b.Child(p, "author", "Widom")
		} else {
			b.Child(p, "author", "Ullman")
		}
	}
	j := b.Child(b.Root(), "journal", "")
	p := b.Child(j, "paper", "")
	b.Child(p, "title", "XML integration")
	b.Child(p, "author", "Widom")
	p2 := b.Child(j, "paper", "")
	b.Child(p2, "title", "Query optimization")
	b.Child(p2, "author", "Selinger")
	th := b.Child(b.Root(), "phdthesis", "")
	tp := b.Child(th, "paper", "")
	b.Child(tp, "title", "Storage managers")
	b.Child(tp, "author", "Widom")
	return b.Freeze()
}

// TestSlide37ReturnTypeRanking reproduces E26: for Q = "Widom XML",
// /bib/conf/paper scores above /bib/journal/paper, and /bib/phdthesis/paper
// is excluded (it cannot match "XML").
func TestSlide37ReturnTypeRanking(t *testing.T) {
	ix := xmltree.NewIndex(slide37Tree())
	got := InferReturnType(ix, []string{"widom", "xml"}, DefaultOptions())
	if len(got) == 0 {
		t.Fatal("no candidate types")
	}
	scores := map[string]float64{}
	for _, ts := range got {
		scores[ts.Path] = ts.Score
	}
	confPaper := scores["/bib/conf/paper"]
	journalPaper := scores["/bib/journal/paper"]
	if confPaper == 0 || journalPaper == 0 {
		t.Fatalf("paper types missing from ranking: %v", got)
	}
	if !(confPaper > journalPaper) {
		t.Errorf("conf/paper (%v) must outrank journal/paper (%v)", confPaper, journalPaper)
	}
	if _, ok := scores["/bib/phdthesis/paper"]; ok {
		t.Errorf("phdthesis/paper cannot cover 'xml' and must score 0 (be omitted)")
	}
}

func TestInferReturnTypeEmptyAndUnmatched(t *testing.T) {
	ix := xmltree.NewIndex(slide37Tree())
	if got := InferReturnType(ix, nil, DefaultOptions()); got != nil {
		t.Errorf("empty query = %v", got)
	}
	if got := InferReturnType(ix, []string{"nosuch"}, DefaultOptions()); got != nil {
		t.Errorf("unmatched keyword = %v", got)
	}
}

func TestDepthFactorPrefersShallowTypes(t *testing.T) {
	// Two types covering equally: the shallower one wins with r < 1.
	b := xmltree.NewBuilder("root")
	a := b.Child(b.Root(), "a", "kw kw2")
	b.Child(a, "b", "kw kw2")
	ix := xmltree.NewIndex(b.Freeze())
	got := InferReturnType(ix, []string{"kw", "kw2"}, Options{DepthFactor: 0.5})
	if len(got) < 2 {
		t.Fatalf("types = %v", got)
	}
	if got[0].Path != "/root/a" && got[0].Path != "/root" {
		t.Errorf("top type = %v, want a shallow one", got[0])
	}
}

func TestInferOnGeneratedBib(t *testing.T) {
	cfg := dataset.DefaultBibConfig()
	cfg.PapersPerVenue = 20
	ix := xmltree.NewIndex(dataset.BibXML(cfg))
	got := InferReturnType(ix, []string{"keyword", "search"}, DefaultOptions())
	if len(got) == 0 {
		t.Fatal("no types on generated bib")
	}
	// The top candidates should be paper-flavoured (not authors or years).
	top := got[0].Path
	if !strings.Contains(top, "paper") && !strings.Contains(top, "title") &&
		top != "/bib" && !strings.Contains(top, "conf") && !strings.Contains(top, "journal") {
		t.Errorf("unexpected top type %q", top)
	}
	// Scores descend.
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("scores not sorted at %d", i)
		}
	}
}

func TestNodeScore(t *testing.T) {
	tr := slide37Tree()
	ix := xmltree.NewIndex(tr)
	papers := tr.NodesByLabel("paper")
	// The XML+Widom conf paper outscores the Datalog paper.
	sXML := NodeScore(ix, papers[0], []string{"widom", "xml"})
	sDatalog := NodeScore(ix, papers[2], []string{"widom", "xml"})
	if !(sXML > sDatalog) {
		t.Errorf("NodeScore: xml paper %v should beat datalog paper %v", sXML, sDatalog)
	}
}
