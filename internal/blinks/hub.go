package blinks

import (
	"sort"

	"kwsearch/internal/datagraph"
)

// HubIndex is the proximity index of Goldman et al. (VLDB'98, slide 122):
// a set of hub nodes with precomputed hub-to-all distances. A query
// d(x, y) combines a local Dijkstra that never expands *through* a hub
// (d*(x, y)) with the best hub detour min_h d(x,h) + d(h,y). Any shortest
// path either avoids all hubs — found by the local search — or passes
// through one, bounded by the detour term, so the result is exact.
type HubIndex struct {
	g       *datagraph.Graph
	hubs    []datagraph.NodeID
	isHub   map[datagraph.NodeID]bool
	hubDist []map[datagraph.NodeID]float64 // per hub: distance to all nodes
}

// NewHubIndex picks the numHubs highest-degree nodes as hubs (a stand-in
// for the balanced separators of the paper) and precomputes their distance
// maps.
func NewHubIndex(g *datagraph.Graph, numHubs int) *HubIndex {
	n := g.Len()
	if numHubs > n {
		numHubs = n
	}
	order := make([]datagraph.NodeID, n)
	for i := range order {
		order[i] = datagraph.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	h := &HubIndex{g: g, isHub: make(map[datagraph.NodeID]bool, numHubs)}
	for _, nd := range order[:numHubs] {
		h.hubs = append(h.hubs, nd)
		h.isHub[nd] = true
	}
	for _, hub := range h.hubs {
		h.hubDist = append(h.hubDist, g.Dijkstra(hub, datagraph.Inf))
	}
	return h
}

// Entries returns the stored distance count — the space cost compared
// against the O(V²) all-pairs table the slide calls impractical.
func (h *HubIndex) Entries() int {
	n := 0
	for _, m := range h.hubDist {
		n += len(m)
	}
	return n
}

// Hubs returns the hub nodes.
func (h *HubIndex) Hubs() []datagraph.NodeID {
	out := make([]datagraph.NodeID, len(h.hubs))
	copy(out, h.hubs)
	return out
}

// Distance returns the exact shortest distance between x and y, and false
// if they are disconnected.
func (h *HubIndex) Distance(x, y datagraph.NodeID) (float64, bool) {
	best := datagraph.Inf
	for i := range h.hubs {
		dx, okx := h.hubDist[i][x]
		dy, oky := h.hubDist[i][y]
		if okx && oky && dx+dy < best {
			best = dx + dy
		}
	}
	// Local search from x that may *end* at a hub or y but never expands
	// beyond a hub, pruned at the current best.
	local := h.avoidingHubsDist(x, y, best)
	if local < best {
		best = local
	}
	if best == datagraph.Inf {
		return 0, false
	}
	return best, true
}

// avoidingHubsDist runs Dijkstra from x without expanding hub nodes,
// returning the distance to y among paths whose interior avoids hubs
// (x or y may themselves be hubs), bounded by cutoff.
func (h *HubIndex) avoidingHubsDist(x, y datagraph.NodeID, cutoff float64) float64 {
	dist := map[datagraph.NodeID]float64{x: 0}
	type item struct {
		n datagraph.NodeID
		d float64
	}
	heap := []item{{n: x, d: 0}}
	push := func(it item) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].d <= heap[i].d {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < len(heap) && heap[l].d < heap[s].d {
				s = l
			}
			if r < len(heap) && heap[r].d < heap[s].d {
				s = r
			}
			if s == i {
				break
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
		return top
	}
	for len(heap) > 0 {
		it := pop()
		if it.d > dist[it.n] || it.d >= cutoff {
			continue
		}
		if it.n == y {
			return it.d
		}
		// Hubs may be reached but not expanded (unless it is the source).
		if h.isHub[it.n] && it.n != x {
			continue
		}
		for _, e := range h.g.Neighbors(it.n) {
			nd := it.d + e.Weight
			if nd >= cutoff {
				continue
			}
			if cur, ok := dist[e.To]; !ok || nd < cur {
				dist[e.To] = nd
				push(item{n: e.To, d: nd})
			}
		}
	}
	if d, ok := dist[y]; ok && d < cutoff {
		return d
	}
	return datagraph.Inf
}
