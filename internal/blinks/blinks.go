// Package blinks implements index-backed graph keyword search: the
// node-to-keyword distance index with TA-style top-k of SLINKS/BLINKS
// (He et al. SIGMOD'07), a block-partitioned variant with block-level
// lower bounds, and the hub-based proximity index of Goldman et al.
// (VLDB'98) — the "specialized indexes for KWS" of slides 121-124.
package blinks

import (
	"sort"

	"kwsearch/internal/datagraph"
)

// Answer is a distinct-root result: cost(r) = Σᵢ dist(r, keywordᵢ).
type Answer struct {
	Root  datagraph.NodeID
	Dists []float64
	Cost  float64
}

// distEntry is one posting of the keyword-distance index.
type distEntry struct {
	node datagraph.NodeID
	dist float64
}

// Index is the SLINKS-style node-to-keyword distance index: for every
// indexed keyword, the exact shortest distance from each reachable node to
// the nearest match, stored both as a sorted list (for sorted access) and
// a map (for random access) — the two access paths Fagin's TA needs.
type Index struct {
	lists map[string][]distEntry
	dists map[string]map[datagraph.NodeID]float64
}

// NewIndex precomputes distances for every keyword in keywordNodes (term ->
// matching nodes) via one multi-source Dijkstra per keyword. Space is
// O(K·V), which is the trade-off slide 123 calls out.
func NewIndex(g *datagraph.Graph, keywordNodes map[string][]datagraph.NodeID) *Index {
	ix := &Index{
		lists: make(map[string][]distEntry, len(keywordNodes)),
		dists: make(map[string]map[datagraph.NodeID]float64, len(keywordNodes)),
	}
	for term, nodes := range keywordNodes {
		if len(nodes) == 0 {
			continue
		}
		dist := multiSourceDijkstra(g, nodes)
		ix.dists[term] = dist
		list := make([]distEntry, 0, len(dist))
		for n, d := range dist {
			list = append(list, distEntry{node: n, dist: d})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].dist != list[j].dist {
				return list[i].dist < list[j].dist
			}
			return list[i].node < list[j].node
		})
		ix.lists[term] = list
	}
	return ix
}

func multiSourceDijkstra(g *datagraph.Graph, sources []datagraph.NodeID) map[datagraph.NodeID]float64 {
	// Add a virtual source by seeding all real sources at distance 0.
	dist := map[datagraph.NodeID]float64{}
	type item struct {
		n datagraph.NodeID
		d float64
	}
	h := make([]item, 0, len(sources))
	pushItem := func(it item) {
		h = append(h, it)
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h[p].d <= h[i].d {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
	}
	popItem := func() item {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(h) && h[l].d < h[small].d {
				small = l
			}
			if r < len(h) && h[r].d < h[small].d {
				small = r
			}
			if small == i {
				break
			}
			h[i], h[small] = h[small], h[i]
			i = small
		}
		return top
	}
	for _, s := range sources {
		if _, ok := dist[s]; !ok {
			dist[s] = 0
			pushItem(item{n: s, d: 0})
		}
	}
	for len(h) > 0 {
		it := popItem()
		if it.d > dist[it.n] {
			continue
		}
		for _, e := range g.Neighbors(it.n) {
			nd := it.d + e.Weight
			if cur, ok := dist[e.To]; !ok || nd < cur {
				dist[e.To] = nd
				pushItem(item{n: e.To, d: nd})
			}
		}
	}
	return dist
}

// Distance returns the indexed node-to-keyword distance.
func (ix *Index) Distance(term string, n datagraph.NodeID) (float64, bool) {
	m, ok := ix.dists[term]
	if !ok {
		return 0, false
	}
	d, ok := m[n]
	return d, ok
}

// Entries returns the total number of stored (keyword, node) distances —
// the index-space measure of E23/E16.
func (ix *Index) Entries() int {
	n := 0
	for _, l := range ix.lists {
		n += len(l)
	}
	return n
}

// Stats reports query work for the benchmark comparisons.
type Stats struct {
	// SortedAccesses counts entries consumed from the sorted lists.
	SortedAccesses int
	// RandomAccesses counts point lookups into the distance maps.
	RandomAccesses int
	// BlocksScanned counts blocks opened (partitioned index only).
	BlocksScanned int
}

// TopK runs Fagin's threshold algorithm over the keyword distance lists:
// sorted access round-robin, random access to complete each discovered
// root, stop when the k-th best cost is at most the threshold
// τ = Σᵢ (current sorted-access depth distance). Exact under the
// distinct-root cost.
func (ix *Index) TopK(terms []string, k int) ([]Answer, Stats) {
	var stats Stats
	if k <= 0 {
		k = 10
	}
	lists := make([][]distEntry, 0, len(terms))
	for _, t := range terms {
		l, ok := ix.lists[t]
		if !ok || len(l) == 0 {
			return nil, stats // a keyword with no matches has no answers
		}
		lists = append(lists, l)
	}
	pos := make([]int, len(lists))
	seen := map[datagraph.NodeID]bool{}
	var top []Answer

	better := func(a, b Answer) bool {
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		return a.Root < b.Root
	}
	insert := func(a Answer) {
		top = append(top, a)
		sort.Slice(top, func(i, j int) bool { return better(top[i], top[j]) })
		if len(top) > k {
			top = top[:k]
		}
	}
	tryRoot := func(n datagraph.NodeID) {
		if seen[n] {
			return
		}
		seen[n] = true
		a := Answer{Root: n, Dists: make([]float64, len(terms))}
		for i, t := range terms {
			stats.RandomAccesses++
			d, ok := ix.Distance(t, n)
			if !ok {
				return // unreachable from keyword i
			}
			a.Dists[i] = d
			a.Cost += d
		}
		insert(a)
	}

	for {
		// Every root reachable from all keywords appears in every list, so
		// as soon as one list is fully consumed, all viable roots have been
		// completed by random access and the search is done.
		anyExhausted := false
		threshold := 0.0
		for i, l := range lists {
			if pos[i] < len(l) {
				threshold += l[pos[i]].dist
			} else {
				anyExhausted = true
			}
		}
		if anyExhausted {
			break
		}
		if len(top) >= k && top[k-1].Cost <= threshold {
			break
		}
		// One round of sorted access on every list.
		for i, l := range lists {
			if pos[i] >= len(l) {
				continue
			}
			e := l[pos[i]]
			pos[i]++
			stats.SortedAccesses++
			tryRoot(e.node)
		}
	}
	return top, stats
}
