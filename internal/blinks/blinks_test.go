package blinks

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kwsearch/internal/datagraph"
)

func lineGraph(n int) *datagraph.Graph {
	g := datagraph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(datagraph.NodeID(i), datagraph.NodeID(i+1), 1)
	}
	return g
}

func randomGraph(seed int64, n int) *datagraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := datagraph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(datagraph.NodeID(i), datagraph.NodeID((i+1)%n), float64(1+rng.Intn(4)))
	}
	for i := 0; i < n; i++ {
		g.AddEdge(datagraph.NodeID(rng.Intn(n)), datagraph.NodeID(rng.Intn(n)), float64(1+rng.Intn(4)))
	}
	return g
}

func TestIndexDistances(t *testing.T) {
	g := lineGraph(5)
	ix := NewIndex(g, map[string][]datagraph.NodeID{
		"a": {0},
		"b": {4},
	})
	for n := 0; n < 5; n++ {
		d, ok := ix.Distance("a", datagraph.NodeID(n))
		if !ok || d != float64(n) {
			t.Errorf("dist(a, %d) = %v ok=%v, want %d", n, d, ok, n)
		}
	}
	if _, ok := ix.Distance("nosuch", 0); ok {
		t.Errorf("unknown term should miss")
	}
	if ix.Entries() != 10 {
		t.Errorf("Entries = %d, want 10", ix.Entries())
	}
}

func TestIndexMultiSourceTakesNearest(t *testing.T) {
	g := lineGraph(7)
	ix := NewIndex(g, map[string][]datagraph.NodeID{"a": {0, 6}})
	d, _ := ix.Distance("a", 2)
	if d != 2 {
		t.Errorf("dist = %v, want 2 (nearest of the two sources)", d)
	}
	d, _ = ix.Distance("a", 5)
	if d != 1 {
		t.Errorf("dist = %v, want 1", d)
	}
}

func TestTopKLine(t *testing.T) {
	g := lineGraph(5)
	ix := NewIndex(g, map[string][]datagraph.NodeID{
		"a": {0}, "b": {4},
	})
	top, stats := ix.TopK([]string{"a", "b"}, 3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	// Every node is an optimal root on a line: cost 4 everywhere.
	for _, a := range top {
		if a.Cost != 4 {
			t.Errorf("cost = %v, want 4", a.Cost)
		}
	}
	if stats.SortedAccesses == 0 || stats.RandomAccesses == 0 {
		t.Errorf("stats not recorded: %+v", stats)
	}
}

func TestTopKMissingKeyword(t *testing.T) {
	g := lineGraph(3)
	ix := NewIndex(g, map[string][]datagraph.NodeID{"a": {0}})
	top, _ := ix.TopK([]string{"a", "zzz"}, 2)
	if top != nil {
		t.Fatalf("expected no answers, got %v", top)
	}
}

// brute computes the exact distinct-root top-k by full Dijkstra.
func brute(g *datagraph.Graph, kwNodes map[string][]datagraph.NodeID, terms []string, k int) []float64 {
	var dms []map[datagraph.NodeID]float64
	for _, t := range terms {
		dms = append(dms, multiSourceDijkstra(g, kwNodes[t]))
	}
	var costs []float64
	for n := 0; n < g.Len(); n++ {
		c := 0.0
		ok := true
		for _, dm := range dms {
			d, has := dm[datagraph.NodeID(n)]
			if !has {
				ok = false
				break
			}
			c += d
		}
		if ok {
			costs = append(costs, c)
		}
	}
	if costs == nil {
		return nil
	}
	for i := 1; i < len(costs); i++ {
		for j := i; j > 0 && costs[j] < costs[j-1]; j-- {
			costs[j], costs[j-1] = costs[j-1], costs[j]
		}
	}
	if len(costs) > k {
		costs = costs[:k]
	}
	return costs
}

// Property (E16/E23 correctness side): the TA top-k and the partitioned
// top-k both equal the brute-force distinct-root optimum.
func TestTopKMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(20)
		g := randomGraph(seed, n)
		kw := map[string][]datagraph.NodeID{}
		terms := []string{"x", "y"}
		for _, term := range terms {
			cnt := 1 + rng.Intn(3)
			for i := 0; i < cnt; i++ {
				kw[term] = append(kw[term], datagraph.NodeID(rng.Intn(n)))
			}
		}
		k := 1 + rng.Intn(4)
		want := brute(g, kw, terms, k)

		ix := NewIndex(g, kw)
		got, _ := ix.TopK(terms, k)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if math.Abs(got[i].Cost-want[i]) > 1e-9 {
				return false
			}
		}
		p := NewPartitionedIndex(g, kw, 4)
		got2, _ := p.TopK(terms, k)
		if len(got2) != len(want) {
			return false
		}
		for i := range want {
			if math.Abs(got2[i].Cost-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedBlocksPruned(t *testing.T) {
	// Two far-apart clusters: with keywords in cluster 1 only, the top-k
	// must not open cluster 2's blocks.
	g := datagraph.New(60)
	for i := 0; i+1 < 30; i++ {
		g.AddEdge(datagraph.NodeID(i), datagraph.NodeID(i+1), 1)
	}
	for i := 30; i+1 < 60; i++ {
		g.AddEdge(datagraph.NodeID(i), datagraph.NodeID(i+1), 1)
	}
	g.AddEdge(29, 30, 1000) // weak bridge
	kw := map[string][]datagraph.NodeID{
		"x": {0}, "y": {5},
	}
	p := NewPartitionedIndex(g, kw, 6)
	top, stats := p.TopK([]string{"x", "y"}, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if stats.BlocksScanned >= p.NumBlocks() {
		t.Errorf("no block pruning: scanned %d of %d", stats.BlocksScanned, p.NumBlocks())
	}
}

func TestPartitionCoversAllNodes(t *testing.T) {
	g := randomGraph(3, 37)
	p := NewPartitionedIndex(g, map[string][]datagraph.NodeID{"x": {0}}, 5)
	seen := map[datagraph.NodeID]bool{}
	for _, blk := range p.blocks {
		for _, n := range blk {
			if seen[n] {
				t.Fatalf("node %d in two blocks", n)
			}
			seen[n] = true
		}
	}
	if len(seen) != g.Len() {
		t.Fatalf("partition covers %d of %d nodes", len(seen), g.Len())
	}
}

// Property (E23): hub-index distances are exact.
func TestHubDistanceExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(20)
		g := randomGraph(seed, n)
		h := NewHubIndex(g, 1+rng.Intn(4))
		for trial := 0; trial < 10; trial++ {
			x := datagraph.NodeID(rng.Intn(n))
			y := datagraph.NodeID(rng.Intn(n))
			want, wantOK := g.Dijkstra(x, datagraph.Inf)[y]
			got, ok := h.Distance(x, y)
			if ok != wantOK {
				return false
			}
			if ok && math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHubDistanceDisconnected(t *testing.T) {
	g := datagraph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	h := NewHubIndex(g, 2)
	if _, ok := h.Distance(0, 3); ok {
		t.Fatalf("disconnected pair must report false")
	}
	if d, ok := h.Distance(0, 1); !ok || d != 1 {
		t.Fatalf("d(0,1) = %v ok=%v", d, ok)
	}
	if d, ok := h.Distance(0, 0); !ok || d != 0 {
		t.Fatalf("d(0,0) = %v ok=%v", d, ok)
	}
}

func TestHubIndexSpaceSmallerThanAPSP(t *testing.T) {
	g := randomGraph(9, 60)
	h := NewHubIndex(g, 4)
	if h.Entries() >= 60*60 {
		t.Errorf("hub index (%d entries) should be far below O(V^2)=3600", h.Entries())
	}
	if len(h.Hubs()) != 4 {
		t.Errorf("hubs = %v", h.Hubs())
	}
}
