package blinks

import (
	"math"
	"sort"

	"kwsearch/internal/datagraph"
)

// PartitionedIndex is the bi-level BLINKS layout: the graph is cut into
// blocks; queries process blocks in order of a block-level lower bound
// LB(b) = Σᵢ min over nodes of b of dist(node, keywordᵢ), opening a block
// (scanning its nodes) only while it can still beat the current top-k —
// the block pruning of He et al. SIGMOD'07.
type PartitionedIndex struct {
	base    *Index
	blockOf []int
	blocks  [][]datagraph.NodeID
	// blockMin[term][b] is the smallest node-to-term distance in block b.
	blockMin map[string][]float64
}

// NewPartitionedIndex partitions g into roughly numBlocks BFS-grown blocks
// and indexes block-level keyword minima over the base distance index.
func NewPartitionedIndex(g *datagraph.Graph, keywordNodes map[string][]datagraph.NodeID, numBlocks int) *PartitionedIndex {
	if numBlocks < 1 {
		numBlocks = 1
	}
	base := NewIndex(g, keywordNodes)
	n := g.Len()
	target := (n + numBlocks - 1) / numBlocks
	if target < 1 {
		target = 1
	}
	blockOf := make([]int, n)
	for i := range blockOf {
		blockOf[i] = -1
	}
	var blocks [][]datagraph.NodeID
	for start := 0; start < n; start++ {
		if blockOf[start] >= 0 {
			continue
		}
		// Grow a block by BFS until the size target is met.
		b := len(blocks)
		var members []datagraph.NodeID
		queue := []datagraph.NodeID{datagraph.NodeID(start)}
		blockOf[start] = b
		for len(queue) > 0 && len(members) < target {
			nd := queue[0]
			queue = queue[1:]
			members = append(members, nd)
			for _, e := range g.Neighbors(nd) {
				if blockOf[e.To] < 0 && len(members)+len(queue) < target {
					blockOf[e.To] = b
					queue = append(queue, e.To)
				}
			}
		}
		// Flush any queued-but-unvisited members.
		for _, nd := range queue {
			members = append(members, nd)
		}
		blocks = append(blocks, members)
	}

	p := &PartitionedIndex{
		base:     base,
		blockOf:  blockOf,
		blocks:   blocks,
		blockMin: make(map[string][]float64),
	}
	for term, dm := range base.dists {
		mins := make([]float64, len(blocks))
		for i := range mins {
			mins[i] = math.Inf(1)
		}
		for nd, d := range dm {
			b := blockOf[nd]
			if d < mins[b] {
				mins[b] = d
			}
		}
		p.blockMin[term] = mins
	}
	return p
}

// NumBlocks returns the number of blocks the graph was cut into.
func (p *PartitionedIndex) NumBlocks() int { return len(p.blocks) }

// TopK processes blocks best-first by lower bound, scanning nodes of opened
// blocks with random access, and stops when the k-th answer beats every
// unopened block's bound. Exact under the distinct-root cost.
func (p *PartitionedIndex) TopK(terms []string, k int) ([]Answer, Stats) {
	var stats Stats
	if k <= 0 {
		k = 10
	}
	mins := make([][]float64, 0, len(terms))
	for _, t := range terms {
		m, ok := p.blockMin[t]
		if !ok {
			return nil, stats
		}
		mins = append(mins, m)
	}
	type blockBound struct {
		b  int
		lb float64
	}
	bounds := make([]blockBound, 0, len(p.blocks))
	for b := range p.blocks {
		lb := 0.0
		for _, m := range mins {
			lb += m[b]
		}
		if !math.IsInf(lb, 1) {
			bounds = append(bounds, blockBound{b: b, lb: lb})
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].lb < bounds[j].lb })

	var top []Answer
	insert := func(a Answer) {
		top = append(top, a)
		sort.Slice(top, func(i, j int) bool {
			if top[i].Cost != top[j].Cost {
				return top[i].Cost < top[j].Cost
			}
			return top[i].Root < top[j].Root
		})
		if len(top) > k {
			top = top[:k]
		}
	}
	for _, bb := range bounds {
		if len(top) >= k && top[k-1].Cost <= bb.lb {
			break
		}
		stats.BlocksScanned++
		for _, nd := range p.blocks[bb.b] {
			a := Answer{Root: nd, Dists: make([]float64, len(terms))}
			ok := true
			for i, t := range terms {
				stats.RandomAccesses++
				d, has := p.base.Distance(t, nd)
				if !has {
					ok = false
					break
				}
				a.Dists[i] = d
				a.Cost += d
			}
			if ok {
				insert(a)
			}
		}
	}
	return top, stats
}
