package plan

import (
	"context"
	"fmt"
	"testing"

	"kwsearch/internal/cn"
	"kwsearch/internal/dataset"
	"kwsearch/internal/schemagraph"
)

// dblpGraph is the DBLP schema graph (A ↔ W ↔ P, P → C, P ↔ Cite ↔ P),
// the heaviest enumeration workload the repo's datasets produce.
func dblpGraph(b *testing.B) *schemagraph.Graph {
	b.Helper()
	return schemagraph.FromDB(dataset.DBLP(dataset.DefaultDBLPConfig()))
}

// dblpOpts is a three-keyword-table signature on the DBLP schema at the
// engine's default MaxSize, the shape of a real "keyword in author,
// paper and conference" query.
func dblpOpts() cn.EnumerateOptions {
	return cn.EnumerateOptions{
		MaxSize:       5,
		KeywordTables: []string{"author", "paper", "conference"},
		FreeTables:    []string{"write", "cite"},
	}
}

// BenchmarkPlanCacheWarm measures the steady-state hit path: key
// derivation plus one sharded LRU lookup, the cost a warm query pays
// instead of full enumeration.
func BenchmarkPlanCacheWarm(b *testing.B) {
	g := dblpGraph(b)
	c := New(Options{Workers: 4})
	if _, _, err := c.Get(context.Background(), g, dblpOpts()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, hit, err := c.Get(context.Background(), g, dblpOpts())
		if err != nil || !hit {
			b.Fatalf("hit=%v err=%v", hit, err)
		}
	}
}

// BenchmarkPlanCacheCold measures a full compile per iteration (the
// generation bump forces a rebuild), i.e. the miss path a schema change
// or first-seen signature pays.
func BenchmarkPlanCacheCold(b *testing.B) {
	g := dblpGraph(b)
	c := New(Options{Workers: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Invalidate()
		if _, _, err := c.Get(context.Background(), g, dblpOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnumerate compares serial cn.EnumerateCtx against the
// frontier-partitioned parallel cold path at several pool sizes.
func BenchmarkEnumerate(b *testing.B) {
	g := dblpGraph(b)
	opts := dblpOpts()
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cn.EnumerateCtx(context.Background(), g, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, w := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("parallel-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EnumerateParallel(context.Background(), g, opts, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
