package plan

// This file is the cold path of the plan cache: parallel candidate-
// network enumeration. The breadth-first frontier of cn.EnumerateCtx
// partitions by root keyword table — every partial CN grows from exactly
// one seed, and the serial frontier is grouped by seed in sorted order
// at every level — so each level's expansion fans out seed groups across
// a worker pool (placed by parallel.Assign, the same sharing-aware
// partitioner the evaluation pool uses) and a level barrier merges the
// children back in seed order with global canonical deduplication,
// first occurrence winning. The barrier keeps the dedupe set global, so
// no worker ever re-explores a subtree another seed already claimed,
// and the merge order equals the serial visit order: the output is
// byte-identical to cn.EnumerateCtx (asserted under -race and by
// property tests over randomized schemas).

import (
	"context"
	"sort"
	"sync"

	"kwsearch/internal/cn"
	"kwsearch/internal/parallel"
	"kwsearch/internal/schemagraph"
)

// EnumerateParallel enumerates candidate networks with each level's
// frontier partitioned by root keyword table across a pool of workers,
// returning exactly what cn.EnumerateCtx returns — same CNs, same
// order. workers <= 1, or fewer than two seeds, falls back to the
// serial enumerator. Any worker error (cancellation, an injected fault)
// aborts the whole enumeration: a partial CN set would silently change
// which answers exist.
func EnumerateParallel(ctx context.Context, g *schemagraph.Graph, opts cn.EnumerateOptions, workers int) ([]*cn.CN, error) {
	seeds := normTables(g, opts.KeywordTables)
	if workers <= 1 || len(seeds) < 2 {
		return cn.EnumerateCtx(ctx, g, opts)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	maxSize := opts.MaxSize
	if maxSize <= 0 {
		maxSize = 5
	}

	// Emission bookkeeping, mirroring the serial enumerator: levels by
	// size, global canonical dedupe, MaxCNs early exit.
	var out []*cn.CN
	frontierSeen := map[string]bool{}
	emit := func(c *cn.CN) bool {
		if c.Valid() {
			out = append(out, c)
			if opts.MaxCNs > 0 && len(out) >= opts.MaxCNs {
				return false
			}
		}
		return true
	}

	// Seed frontier: one single-node partial per keyword table, sorted.
	// normTables already sorted, deduplicated and HasTable-filtered.
	var frontier []*cn.CN
	for _, t := range seeds {
		c := &cn.CN{Nodes: []cn.NodeSpec{{Table: t}}}
		frontierSeen[c.Canonical()] = true
		if !emit(c) {
			return out, nil
		}
		frontier = append(frontier, c)
	}

	for size := 1; size < maxSize; size++ {
		// Group the frontier by root seed. Children inherit their
		// parent's root (growth only appends nodes), and the merge below
		// appends in seed order, so the frontier is grouped by seed in
		// sorted seed order at every level — the groups are contiguous
		// slices.
		groups := groupBySeed(frontier, seeds)

		// One job per seed-group chunk; a seed whose subtree dominates
		// the frontier (skew is the norm — hub tables fan out hardest)
		// is split into contiguous chunks so Assign can balance it
		// across the pool. Chunking preserves the merge order: chunks
		// are emitted seed by seed, in order, and concatenating their
		// outputs in job order equals concatenating the groups.
		chunk := len(frontier)/(workers*4) + 1
		var jobs []parallel.Job
		var jobGroups [][]*cn.CN
		for _, grp := range groups {
			for len(grp) > 0 {
				n := chunk
				if n > len(grp) {
					n = len(grp)
				}
				part := grp[:n]
				grp = grp[n:]
				jobs = append(jobs, parallel.Job{
					CN:          part[0],
					Prefixes:    []string{part[0].Canonical()},
					PrefixCosts: []float64{float64(len(part))},
				})
				jobGroups = append(jobGroups, part)
			}
		}
		assignment := parallel.Assign(jobs, workers)

		// Expand each worker's groups concurrently; results land in the
		// group's own slot (disjoint writes, no lock beyond the join).
		slot := map[*cn.CN]int{}
		for i, grp := range jobGroups {
			slot[grp[0]] = i
		}
		grown := make([][][]cn.Grown, len(jobGroups))
		errs := make([]error, len(jobGroups))
		var wg sync.WaitGroup
		for _, workerJobs := range assignment.Jobs {
			if len(workerJobs) == 0 {
				continue
			}
			wg.Add(1)
			go func(workerJobs []parallel.Job) {
				defer wg.Done()
				for _, j := range workerJobs {
					i := slot[j.CN]
					grown[i], errs[i] = cn.Expand(ctx, g, opts, jobGroups[i])
				}
			}(workerJobs)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}

		// Level barrier: merge children in seed order, then partial
		// order, then child order — the serial visit order — deduping
		// globally so the next level's groups stay disjoint.
		var next []*cn.CN
		for _, perPartial := range grown {
			for _, children := range perPartial {
				for _, gc := range children {
					if frontierSeen[gc.Key] {
						continue
					}
					frontierSeen[gc.Key] = true
					if !emit(gc.CN) {
						return out, nil
					}
					next = append(next, gc.CN)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return out, nil
}

// groupBySeed splits a frontier into per-seed groups (seed = Nodes[0],
// the table the partial grew from), preserving order within each group.
// Output groups follow sorted seed order.
func groupBySeed(frontier []*cn.CN, seeds []string) [][]*cn.CN {
	if !sort.StringsAreSorted(seeds) {
		// normTables sorts; a violation here means a caller bypassed it.
		sort.Strings(seeds)
	}
	idx := make(map[string]int, len(seeds))
	for i, s := range seeds {
		idx[s] = i
	}
	groups := make([][]*cn.CN, len(seeds))
	for _, c := range frontier {
		i := idx[c.Nodes[0].Table]
		groups[i] = append(groups[i], c)
	}
	return groups
}
