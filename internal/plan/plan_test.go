package plan

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"kwsearch/internal/cn"
	"kwsearch/internal/obs"
	"kwsearch/internal/schemagraph"
)

// awpGraph is the slide-28 schema used across the repo's enumeration
// tests: author <- write -> paper.
func awpGraph(t testing.TB) *schemagraph.Graph {
	t.Helper()
	g, err := schemagraph.New(
		[]string{"author", "write", "paper"},
		[]schemagraph.Edge{
			{From: "write", FromCol: "aid", To: "author", ToCol: "aid"},
			{From: "write", FromCol: "pid", To: "paper", ToCol: "pid"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// render flattens a CN slice to its canonical emission sequence, the
// byte-identity currency of every equivalence assertion in this package.
func render(cns []*cn.CN) string {
	var b strings.Builder
	for _, c := range cns {
		b.WriteString(c.Canonical())
		b.WriteByte('\n')
	}
	return b.String()
}

// awpOpts is the standard slide-28 enumeration request.
func awpOpts() cn.EnumerateOptions {
	return cn.EnumerateOptions{
		MaxSize:       5,
		KeywordTables: []string{"author", "paper"},
		FreeTables:    []string{"write"},
	}
}

// TestCacheHitMiss checks the basic contract: first Get compiles (miss),
// second Get returns the same immutable *PlanSet (hit), and the plan
// matches fresh serial enumeration byte-for-byte.
func TestCacheHitMiss(t *testing.T) {
	g := awpGraph(t)
	c := New(Options{})
	ps1, hit, err := c.Get(context.Background(), g, awpOpts())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first Get reported a cache hit")
	}
	ps2, hit, err := c.Get(context.Background(), g, awpOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second Get missed")
	}
	if ps1 != ps2 {
		t.Error("hit returned a different *PlanSet than the build")
	}
	want, _ := cn.EnumerateCtx(context.Background(), g, awpOpts())
	if render(ps1.CNs()) != render(want) {
		t.Errorf("cached plan differs from fresh enumeration:\n%s\nwant:\n%s", render(ps1.CNs()), render(want))
	}
	if ps1.Len() != len(want) || ps1.Len() != 5 {
		t.Errorf("Len() = %d, want 5", ps1.Len())
	}
	if c.Builds() != 1 {
		t.Errorf("Builds() = %d, want 1", c.Builds())
	}
}

// TestKeyNormalization checks that option bundles compiling to the same
// plan share a key: table order, duplicates and unknown tables are
// normalized away, and MaxSize <= 0 collapses to the enumerator's
// default of 5.
func TestKeyNormalization(t *testing.T) {
	g := awpGraph(t)
	base := Key("", g, awpOpts())
	same := []cn.EnumerateOptions{
		{MaxSize: 5, KeywordTables: []string{"paper", "author"}, FreeTables: []string{"write"}},
		{MaxSize: 5, KeywordTables: []string{"author", "author", "paper"}, FreeTables: []string{"write", "nosuch"}},
		{MaxSize: 0, KeywordTables: []string{"author", "paper"}, FreeTables: []string{"write"}},
	}
	for i, o := range same {
		if got := Key("", g, o); got != base {
			t.Errorf("variant %d: key %q != base %q", i, got, base)
		}
	}
	diff := []cn.EnumerateOptions{
		{MaxSize: 4, KeywordTables: []string{"author", "paper"}, FreeTables: []string{"write"}},
		{MaxSize: 5, KeywordTables: []string{"author"}, FreeTables: []string{"write"}},
		{MaxSize: 5, KeywordTables: []string{"author", "paper"}},
		{MaxSize: 5, MaxCNs: 3, KeywordTables: []string{"author", "paper"}, FreeTables: []string{"write"}},
	}
	for i, o := range diff {
		if got := Key("", g, o); got == base {
			t.Errorf("variant %d: key unexpectedly equals base", i)
		}
	}
	if Key("tenant-a", g, awpOpts()) == base {
		t.Error("namespaced key equals default-namespace key")
	}
}

// TestInvalidateDropsPlans checks generation-bump invalidation: after
// Invalidate the next Get recompiles rather than serving the stale
// entry.
func TestInvalidateDropsPlans(t *testing.T) {
	g := awpGraph(t)
	c := New(Options{})
	if _, _, err := c.Get(context.Background(), g, awpOpts()); err != nil {
		t.Fatal(err)
	}
	c.Invalidate()
	_, hit, err := c.Get(context.Background(), g, awpOpts())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("Get hit a stale plan after Invalidate")
	}
	if c.Builds() != 2 {
		t.Errorf("Builds() = %d, want 2", c.Builds())
	}
}

// TestSchemaChangeNeverServesStalePlan mutates the schema (a new Graph,
// as every schema change produces — Graph is immutable) and checks the
// fingerprint in the key forces a fresh compile whose output matches the
// new schema, with or without the accompanying generation bump.
func TestSchemaChangeNeverServesStalePlan(t *testing.T) {
	g := awpGraph(t)
	c := New(Options{})
	ps1, _, err := c.Get(context.Background(), g, awpOpts())
	if err != nil {
		t.Fatal(err)
	}

	// The "schema change": a direct author→paper foreign key appears, so
	// the same membership signature now admits shorter author–paper CNs.
	g2, err := schemagraph.New(
		[]string{"author", "write", "paper"},
		[]schemagraph.Edge{
			{From: "write", FromCol: "aid", To: "author", ToCol: "aid"},
			{From: "write", FromCol: "pid", To: "paper", ToCol: "pid"},
			{From: "author", FromCol: "favpid", To: "paper", ToCol: "pid"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if g.Fingerprint() == g2.Fingerprint() {
		t.Fatal("distinct schemas share a fingerprint")
	}
	ps2, hit, err := c.Get(context.Background(), g2, awpOpts())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("new schema hit the old schema's plan")
	}
	want, _ := cn.EnumerateCtx(context.Background(), g2, awpOpts())
	if render(ps2.CNs()) != render(want) {
		t.Error("plan for mutated schema differs from fresh enumeration")
	}
	if render(ps1.CNs()) == render(ps2.CNs()) {
		t.Error("schema change did not alter the compiled plan (test is vacuous)")
	}
}

// TestNamespaceIsolation checks that WithNamespace handles share storage
// and counters but never each other's plans.
func TestNamespaceIsolation(t *testing.T) {
	g := awpGraph(t)
	c := New(Options{})
	a, b := c.WithNamespace("tenant-a"), c.WithNamespace("tenant-b")
	if a.Namespace() != "tenant-a" || c.Namespace() != "" {
		t.Fatalf("namespaces: a=%q base=%q", a.Namespace(), c.Namespace())
	}
	if _, hit, err := a.Get(context.Background(), g, awpOpts()); err != nil || hit {
		t.Fatalf("tenant-a first Get: hit=%v err=%v", hit, err)
	}
	if _, hit, err := b.Get(context.Background(), g, awpOpts()); err != nil || hit {
		t.Fatalf("tenant-b saw tenant-a's plan: hit=%v err=%v", hit, err)
	}
	if _, hit, err := a.Get(context.Background(), g, awpOpts()); err != nil || !hit {
		t.Fatalf("tenant-a lost its own plan: hit=%v err=%v", hit, err)
	}
	// Shared storage: both builds landed in one LRU, one build counter.
	if st := c.Stats(); st.Entries != 2 {
		t.Errorf("shared entries = %d, want 2", st.Entries)
	}
	if c.Builds() != 2 {
		t.Errorf("shared Builds() = %d, want 2", c.Builds())
	}
}

// TestCancelledBuildNotCached checks a failed compile is never cached:
// the next Get with a live context retries and succeeds.
func TestCancelledBuildNotCached(t *testing.T) {
	g := awpGraph(t)
	c := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Get(ctx, g, awpOpts()); err != context.Canceled {
		t.Fatalf("cancelled build: err = %v, want context.Canceled", err)
	}
	ps, hit, err := c.Get(context.Background(), g, awpOpts())
	if err != nil || hit {
		t.Fatalf("retry after failed build: hit=%v err=%v", hit, err)
	}
	if ps.Len() != 5 {
		t.Errorf("retry compiled %d CNs, want 5", ps.Len())
	}
}

// TestMetricsWired checks the plan.* counters land in the registry.
func TestMetricsWired(t *testing.T) {
	g := awpGraph(t)
	reg := obs.NewRegistry()
	c := New(Options{Metrics: reg})
	c.Get(context.Background(), g, awpOpts())
	c.Get(context.Background(), g, awpOpts())
	snap := reg.Snapshot().String()
	for _, want := range []string{"plan.hits", "plan.misses", "plan.builds", "plan.build_us"} {
		if !strings.Contains(snap, want) {
			t.Errorf("metrics snapshot missing %s:\n%s", want, snap)
		}
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// randomSchema builds a connected random schema graph: a random tree
// over n tables plus extra random edges, the shape space candidate
// networks actually live in.
func randomSchema(rng *rand.Rand, n int) *schemagraph.Graph {
	tables := make([]string, n)
	for i := range tables {
		tables[i] = fmt.Sprintf("t%02d", i)
	}
	var edges []schemagraph.Edge
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		edges = append(edges, schemagraph.Edge{
			From: tables[i], FromCol: "fk" + tables[j], To: tables[j], ToCol: "id",
		})
	}
	for extra := rng.Intn(3); extra > 0; extra-- {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		edges = append(edges, schemagraph.Edge{
			From: tables[i], FromCol: fmt.Sprintf("x%d", extra), To: tables[j], ToCol: "id",
		})
	}
	g, err := schemagraph.New(tables, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// randomMembership draws a random keyword→relation membership signature:
// a non-empty keyword table subset and a random free table subset.
func randomMembership(rng *rand.Rand, g *schemagraph.Graph) cn.EnumerateOptions {
	tables := g.Tables()
	opts := cn.EnumerateOptions{MaxSize: 2 + rng.Intn(4)}
	for _, t := range tables {
		if rng.Intn(2) == 0 {
			opts.KeywordTables = append(opts.KeywordTables, t)
		}
		if rng.Intn(2) == 0 {
			opts.FreeTables = append(opts.FreeTables, t)
		}
	}
	if len(opts.KeywordTables) == 0 {
		opts.KeywordTables = []string{tables[rng.Intn(len(tables))]}
	}
	if rng.Intn(4) == 0 {
		opts.MaxCNs = 1 + rng.Intn(20)
	}
	return opts
}

// TestPropertyCachedPlanEqualsFreshEnumeration is the package's central
// property: over randomized schema graphs and membership signatures, the
// cached PlanSet — compiled cold by the parallel path — is byte-identical
// to fresh serial EnumerateCtx output (same CNs, same order), on the
// build and on every subsequent hit, and a generation bump after a
// schema mutation never serves a stale plan.
func TestPropertyCachedPlanEqualsFreshEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New(Options{Workers: 4, Size: 64})
	for trial := 0; trial < 60; trial++ {
		g := randomSchema(rng, 3+rng.Intn(6))
		opts := randomMembership(rng, g)
		want, err := cn.EnumerateCtx(context.Background(), g, opts)
		if err != nil {
			t.Fatal(err)
		}
		cold, hit, err := c.Get(context.Background(), g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatalf("trial %d: cold signature hit (key collision?)", trial)
		}
		if render(cold.CNs()) != render(want) {
			t.Fatalf("trial %d: cold plan differs from serial enumeration\nopts=%+v\ngot:\n%swant:\n%s",
				trial, opts, render(cold.CNs()), render(want))
		}
		warm, hit, err := c.Get(context.Background(), g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !hit || render(warm.CNs()) != render(want) {
			t.Fatalf("trial %d: warm plan differs (hit=%v)", trial, hit)
		}
		if trial%10 == 9 {
			// Schema "mutation": invalidate, then confirm the same request
			// recompiles to the identical plan rather than serving a stale
			// generation.
			c.Invalidate()
			again, hit, err := c.Get(context.Background(), g, opts)
			if err != nil {
				t.Fatal(err)
			}
			if hit {
				t.Fatalf("trial %d: hit across a generation bump", trial)
			}
			if render(again.CNs()) != render(want) {
				t.Fatalf("trial %d: recompiled plan differs", trial)
			}
		}
	}
}

// TestEnumerateParallelMatchesSerial sweeps worker counts on the fixed
// slide-28 schema, including workers beyond the seed count.
func TestEnumerateParallelMatchesSerial(t *testing.T) {
	g := awpGraph(t)
	opts := cn.EnumerateOptions{
		MaxSize:       5,
		KeywordTables: []string{"author", "paper"},
		FreeTables:    []string{"write", "author", "paper"},
	}
	want, _ := cn.EnumerateCtx(context.Background(), g, opts)
	for _, w := range []int{1, 2, 3, 8} {
		got, err := EnumerateParallel(context.Background(), g, opts, w)
		if err != nil {
			t.Fatal(err)
		}
		if render(got) != render(want) {
			t.Errorf("workers=%d: parallel enumeration differs from serial", w)
		}
	}
	// MaxCNs cap: the parallel merge must keep exactly the serial prefix.
	for mc := 1; mc <= len(want); mc++ {
		opts.MaxCNs = mc
		capped, _ := cn.EnumerateCtx(context.Background(), g, opts)
		got, err := EnumerateParallel(context.Background(), g, opts, 3)
		if err != nil {
			t.Fatal(err)
		}
		if render(got) != render(capped) {
			t.Errorf("MaxCNs=%d: parallel cap differs from serial cap", mc)
		}
	}
}
