package plan

import (
	"context"
	"sync"
	"testing"

	"kwsearch/internal/cn"
)

// TestConcurrentGetStress hammers one cache from many goroutines with
// overlapping signatures, namespaces and interleaved invalidations —
// meaningful under -race, where it guards the share-safe PlanSet
// contract (one *PlanSet handed to many readers at once) and the
// parallel cold path's disjoint-slot writes.
func TestConcurrentGetStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	g := awpGraph(t)
	c := New(Options{Workers: 4, Size: 16})
	sigs := []cn.EnumerateOptions{
		{MaxSize: 5, KeywordTables: []string{"author", "paper"}, FreeTables: []string{"write"}},
		{MaxSize: 5, KeywordTables: []string{"author", "paper"}, FreeTables: []string{"write", "author", "paper"}},
		{MaxSize: 4, KeywordTables: []string{"author"}, FreeTables: []string{"write"}},
		{MaxSize: 3, KeywordTables: []string{"paper", "write"}, FreeTables: []string{"write"}},
	}
	want := make([]string, len(sigs))
	for i, o := range sigs {
		cns, err := cn.EnumerateCtx(context.Background(), g, o)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = render(cns)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := c
			if w%2 == 1 {
				h = c.WithNamespace("tenant-b")
			}
			for i := 0; i < 40; i++ {
				si := (w + i) % len(sigs)
				ps, _, err := h.Get(context.Background(), g, sigs[si])
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if render(ps.CNs()) != want[si] {
					t.Errorf("worker %d sig %d: plan differs from serial enumeration", w, si)
					return
				}
				if w == 0 && i%16 == 15 {
					c.Invalidate() // interleave generation bumps with reads
				}
			}
		}(w)
	}
	wg.Wait()
}
