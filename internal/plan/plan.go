// Package plan is the candidate-network plan cache between the engine
// façade (internal/core, internal/exec) and CN enumeration
// (internal/cn): the DISCOVER-style breadth-first generation depends
// only on the schema graph and on *which* relations hold keyword
// matches, never on the keyword values themselves, so it is a pure
// plan-compilation step — Mragyati (Sarda & Jain) treats it as
// query-to-SQL translation and EMBANKS as a precomputable structure,
// and both argue for compiling once and reusing.
//
// A compiled plan is keyed by (namespace, schema-graph fingerprint,
// keyword→relation membership signature, MaxSize, MaxCNs) and stored in
// the sharded generation-aware LRU of internal/cache: warm queries skip
// enumeration entirely, Invalidate bumps the generation so a schema
// change can never serve a stale plan (the fingerprint in the key
// already guards this; the generation bump is the belt to that
// suspender), and the namespace prefix keeps the cache per-tenant ready
// without per-tenant capacity bookkeeping. Cold signatures are compiled
// by EnumerateParallel, which partitions the breadth-first frontier by
// root keyword table across a worker pool and merges byte-identically
// to serial enumeration.
package plan

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"time"

	"kwsearch/internal/cache"
	"kwsearch/internal/cn"
	"kwsearch/internal/obs"
	"kwsearch/internal/schemagraph"
)

// Options tunes a plan cache. The zero value is a working configuration.
type Options struct {
	// Size bounds the number of cached plans (0 = 128).
	Size int
	// Shards stripes the underlying LRU (0 = 8).
	Shards int
	// Workers is the cold-path enumeration pool size (0 = 1, serial).
	// Parallel compilation only engages when a signature has at least
	// two seed keyword tables to partition.
	Workers int
	// Namespace prefixes every key, isolating tenants that share one
	// cache (and its capacity). Empty is the default namespace.
	Namespace string
	// Metrics, when non-nil, receives the cache counters under "plan.*"
	// (hits, misses, evictions, stale, builds) and the cold-path build
	// time histogram "plan.build_us".
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Size <= 0 {
		o.Size = 128
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// PlanSet is one compiled candidate-network set. It is immutable and
// share-safe: the same *PlanSet is handed to every query that hits its
// key, possibly on many goroutines at once, so neither the slice nor
// the CNs it points to may be mutated — evaluation layers treat CNs as
// read-only, which is exactly the contract (internal/exec decomposes,
// prewarms and joins against them without writing).
type PlanSet struct {
	cns []*cn.CN
	key string
}

// CNs returns the compiled candidate networks in enumeration order
// (nondecreasing size, deterministic within a size). The slice is the
// cache's own: callers must not append to, reorder or mutate it.
func (p *PlanSet) CNs() []*cn.CN { return p.cns }

// Len returns the number of candidate networks in the plan.
func (p *PlanSet) Len() int { return len(p.cns) }

// Key returns the cache key the plan was compiled under, rendered
// printable for diagnostics (Stats.PlanKey, slowlog exemplars): the
// NUL namespace separator of the storage key would otherwise leak into
// JSON output as an escaped zero byte.
func (p *PlanSet) Key() string {
	ns, rest, ok := strings.Cut(p.key, "\x00")
	if !ok {
		return p.key
	}
	if ns == "" {
		return rest
	}
	return "ns=" + ns + "|" + rest
}

// Cache is a concurrency-safe plan cache. Construct with New; handles
// derived with WithNamespace share the same storage and counters.
type Cache struct {
	lru    *cache.Cache[*PlanSet]
	opts   Options
	builds *obs.Counter
	// buildUS is nil unless Options.Metrics was set; recording build
	// times is only useful where something can read them.
	buildUS *obs.Histogram
}

// New builds a plan cache.
func New(opts Options) *Cache {
	opts = opts.withDefaults()
	c := &Cache{
		lru:    cache.New[*PlanSet](opts.Size, opts.Shards),
		opts:   opts,
		builds: &obs.Counter{},
	}
	if opts.Metrics != nil {
		c.lru.Instrument(opts.Metrics, "plan")
		c.builds = opts.Metrics.Attach("plan.builds", c.builds)
		c.buildUS = opts.Metrics.Histogram("plan.build_us")
	}
	return c
}

// WithNamespace returns a handle on the same cache whose keys are
// prefixed with ns — tenants share capacity and counters but can never
// read each other's plans. The receiver is unchanged.
func (c *Cache) WithNamespace(ns string) *Cache {
	nc := *c
	nc.opts.Namespace = ns
	return &nc
}

// Namespace returns the handle's key prefix.
func (c *Cache) Namespace() string { return c.opts.Namespace }

// normTables sorts, deduplicates and filters a table list down to the
// tables the graph actually has — two option bundles that differ only
// in unknown tables or ordering compile to the same plan, so they
// should share a key.
func normTables(g *schemagraph.Graph, tables []string) []string {
	out := make([]string, 0, len(tables))
	for _, t := range tables {
		if g.HasTable(t) {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	n := 0
	for i, t := range out {
		if i == 0 || t != out[n-1] {
			out[n] = t
			n++
		}
	}
	return out[:n]
}

// Key derives the cache key of an enumeration request: namespace,
// schema-graph fingerprint, keyword→relation membership signature (the
// sorted keyword and free table sets — enumeration never sees keyword
// values), and the MaxSize/MaxCNs bounds, normalized the way
// cn.EnumerateCtx normalizes them. The membership signature comes from
// the bind layer — cn.BindSource.KeywordTables() is the producer — so
// distinct queries matching the same relations share one compiled plan.
func Key(namespace string, g *schemagraph.Graph, opts cn.EnumerateOptions) string {
	maxSize := opts.MaxSize
	if maxSize <= 0 {
		maxSize = 5
	}
	maxCNs := opts.MaxCNs
	if maxCNs < 0 {
		maxCNs = 0
	}
	var b strings.Builder
	b.WriteString(namespace)
	b.WriteByte('\x00')
	b.WriteString(g.Fingerprint())
	b.WriteString("|kw=")
	b.WriteString(strings.Join(normTables(g, opts.KeywordTables), ","))
	b.WriteString("|free=")
	b.WriteString(strings.Join(normTables(g, opts.FreeTables), ","))
	b.WriteString("|ms=")
	b.WriteString(strconv.Itoa(maxSize))
	b.WriteString("|mc=")
	b.WriteString(strconv.Itoa(maxCNs))
	return b.String()
}

// Get returns the compiled plan for the request, compiling and caching
// it on a miss. The bool reports whether the plan came from the cache.
// Compilation honors ctx (cancellation, deadlines, fault injection) and
// a failed build is never cached — the next Get retries. Concurrent
// misses on one key may compile twice; the results are identical and
// the last write wins, so the duplicated work is bounded by the number
// of simultaneously cold callers.
func (c *Cache) Get(ctx context.Context, g *schemagraph.Graph, opts cn.EnumerateOptions) (*PlanSet, bool, error) {
	key := Key(c.opts.Namespace, g, opts)
	if ps, ok := c.lru.Get(key); ok {
		return ps, true, nil
	}
	start := time.Now()
	cns, err := EnumerateParallel(ctx, g, opts, c.opts.Workers)
	if err != nil {
		return nil, false, err
	}
	c.builds.Inc()
	c.buildUS.Observe(float64(time.Since(start).Microseconds()))
	ps := &PlanSet{cns: cns, key: key}
	c.lru.Put(key, ps)
	return ps, false, nil
}

// Invalidate bumps the cache generation: every cached plan becomes
// stale and is dropped lazily on next access. Call after any schema
// change (the fingerprint key already isolates schema versions; the
// bump additionally stops a dead schema's plans from occupying LRU
// capacity) — internal/exec wires this into InvalidateCaches.
func (c *Cache) Invalidate() { c.lru.Invalidate() }

// Stats returns the underlying LRU counters (hits, misses, evictions,
// stale, live entries).
func (c *Cache) Stats() cache.Stats { return c.lru.Stats() }

// Builds returns the number of cold compilations performed.
func (c *Cache) Builds() uint64 { return c.builds.Value() }
