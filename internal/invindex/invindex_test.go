package invindex

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"kwsearch/internal/relstore"
)

func smallIndex() *Index {
	ix := New()
	ix.Add(0, "keyword search in databases")
	ix.Add(1, "keyword keyword proximity search")
	ix.Add(2, "XML query processing")
	return ix
}

func TestCounts(t *testing.T) {
	ix := smallIndex()
	if ix.NumDocs() != 3 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	if ix.DF("keyword") != 2 {
		t.Errorf("DF(keyword) = %d, want 2", ix.DF("keyword"))
	}
	if ix.TF("keyword", 1) != 2 {
		t.Errorf("TF(keyword,1) = %d, want 2", ix.TF("keyword", 1))
	}
	if ix.TF("keyword", 2) != 0 {
		t.Errorf("TF(keyword,2) = %d, want 0", ix.TF("keyword", 2))
	}
	if ix.DocLen(0) != 4 {
		t.Errorf("DocLen(0) = %d, want 4", ix.DocLen(0))
	}
	if got := ix.AvgDocLen(); math.Abs(got-11.0/3) > 1e-12 {
		t.Errorf("AvgDocLen = %v", got)
	}
	if !ix.HasTerm("xml") || ix.HasTerm("nosuch") {
		t.Errorf("HasTerm broken")
	}
}

func TestAddSameDocTwiceMerges(t *testing.T) {
	ix := New()
	ix.Add(7, "alpha beta")
	ix.Add(7, "beta gamma")
	if ix.NumDocs() != 1 {
		t.Fatalf("NumDocs = %d, want 1", ix.NumDocs())
	}
	if ix.TF("beta", 7) != 2 {
		t.Errorf("TF(beta) = %d, want 2 after merge", ix.TF("beta", 7))
	}
	if ix.DocLen(7) != 4 {
		t.Errorf("DocLen = %d, want 4", ix.DocLen(7))
	}
	if len(ix.Postings("beta")) != 1 {
		t.Errorf("postings must merge duplicate doc entries")
	}
}

func TestIDFMonotoneInRarity(t *testing.T) {
	ix := smallIndex()
	if !(ix.IDF("xml") > ix.IDF("keyword")) {
		t.Errorf("rarer term must have higher IDF: xml=%v keyword=%v",
			ix.IDF("xml"), ix.IDF("keyword"))
	}
	if ix.IDF("absent") <= 0 {
		t.Errorf("IDF must stay positive")
	}
}

func TestTFIDFAndScore(t *testing.T) {
	ix := smallIndex()
	if ix.TFIDF("keyword", 2) != 0 {
		t.Errorf("absent term TFIDF must be 0")
	}
	// Doc 1 has tf=2: must beat doc 0's tf=1 for the same term.
	if !(ix.TFIDF("keyword", 1) > ix.TFIDF("keyword", 0)) {
		t.Errorf("higher TF must yield higher TFIDF")
	}
	q := []string{"keyword", "search"}
	if !(ix.Score(q, 0) > ix.Score(q, 2)) {
		t.Errorf("doc 0 must outscore doc 2 for %v", q)
	}
}

// TestTermWeightsBitEqualTFIDF pins the contract the index-driven
// binder depends on: TermWeights must hand out exactly the postings
// list with per-doc weights bit-identical to TFIDF, so per-term
// accumulation reproduces Score to the last float64 bit.
func TestTermWeightsBitEqualTFIDF(t *testing.T) {
	ix := smallIndex()
	for _, term := range append(ix.Terms(), "absent") {
		ps, ws := ix.TermWeights(term)
		if len(ps) != len(ws) {
			t.Fatalf("%s: %d postings, %d weights", term, len(ps), len(ws))
		}
		if len(ps) != len(ix.Postings(term)) {
			t.Fatalf("%s: TermWeights dropped postings", term)
		}
		for i, p := range ps {
			want := ix.TFIDF(term, p.Doc)
			if math.Float64bits(ws[i]) != math.Float64bits(want) {
				t.Errorf("%s doc %d: weight %v, want TFIDF %v", term, p.Doc, ws[i], want)
			}
		}
	}
	// Per-term accumulation in term order equals Score bit-for-bit.
	q := []string{"keyword", "search", "keyword"}
	sums := map[DocID]float64{}
	for _, term := range q {
		ps, ws := ix.TermWeights(term)
		for i, p := range ps {
			sums[p.Doc] += ws[i]
		}
	}
	for doc := DocID(0); doc < 3; doc++ {
		if math.Float64bits(sums[doc]) != math.Float64bits(ix.Score(q, doc)) {
			t.Errorf("doc %d: accumulated %v, Score %v", doc, sums[doc], ix.Score(q, doc))
		}
	}
}

func TestIntersectUnion(t *testing.T) {
	ix := smallIndex()
	got := ix.Intersect([]string{"keyword", "search"})
	want := []DocID{0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got := ix.Intersect([]string{"keyword", "nosuch"}); got != nil {
		t.Errorf("Intersect with absent term = %v, want nil", got)
	}
	if got := ix.Intersect(nil); got != nil {
		t.Errorf("Intersect(nil) = %v", got)
	}
	u := ix.Union([]string{"xml", "search"})
	if !reflect.DeepEqual(u, []DocID{0, 1, 2}) {
		t.Errorf("Union = %v", u)
	}
}

func TestDocsSortedAndTerms(t *testing.T) {
	ix := smallIndex()
	docs := ix.Docs("keyword")
	if !sort.SliceIsSorted(docs, func(i, j int) bool { return docs[i] < docs[j] }) {
		t.Errorf("Docs not sorted: %v", docs)
	}
	terms := ix.Terms()
	if !sort.StringsAreSorted(terms) {
		t.Errorf("Terms not sorted")
	}
}

func TestFromDB(t *testing.T) {
	db := relstore.NewDB()
	db.MustCreateTable(&relstore.TableSchema{
		Name: "paper",
		Columns: []relstore.Column{
			{Name: "pid", Type: relstore.KindInt},
			{Name: "title", Type: relstore.KindString, Text: true},
		},
		Key: "pid",
	})
	p := db.MustInsert("paper", map[string]relstore.Value{
		"pid": relstore.Int(1), "title": relstore.String("Keyword search on graphs"),
	})
	ix := FromDB(db)
	docs := ix.Docs("graphs")
	if len(docs) != 1 || docs[0] != DocID(p.ID) {
		t.Fatalf("Docs(graphs) = %v", docs)
	}
}

// Property: Intersect(t1, t2) ⊆ Docs(t1) ∩ Docs(t2) and both directions.
func TestIntersectMatchesSetSemantics(t *testing.T) {
	f := func(docsA, docsB []uint8) bool {
		ix := New()
		for _, d := range docsA {
			ix.Add(DocID(d%16), "alpha")
		}
		for _, d := range docsB {
			ix.Add(DocID(d%16), "beta")
		}
		got := ix.Intersect([]string{"alpha", "beta"})
		inA := map[DocID]bool{}
		for _, d := range ix.Docs("alpha") {
			inA[d] = true
		}
		want := map[DocID]bool{}
		for _, d := range ix.Docs("beta") {
			if inA[d] {
				want[d] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, d := range got {
			if !want[d] {
				return false
			}
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
