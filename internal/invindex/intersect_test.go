package invindex

import (
	"math/rand"
	"reflect"
	"testing"
)

// sortedUnique draws n distinct DocIDs from [0, space) and returns them
// sorted — the shape of a posting list.
func sortedUnique(rng *rand.Rand, n, space int) []DocID {
	seen := map[DocID]bool{}
	var out []DocID
	for len(out) < n && len(out) < space {
		d := DocID(rng.Intn(space))
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestGallopEqualsMergeProperty asserts the galloping and linear-merge
// intersections agree on randomized skewed posting lists (seeded PRNG),
// across skew ratios that straddle GallopCrossover.
func TestGallopEqualsMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 200; round++ {
		small := sortedUnique(rng, rng.Intn(30), 200)
		// Skew the second list anywhere from equal-sized to 100x.
		factor := 1 + rng.Intn(100)
		large := sortedUnique(rng, len(small)*factor+rng.Intn(5), 2000)
		m := IntersectMerge(small, large)
		g := IntersectGallop(small, large)
		if !reflect.DeepEqual(m, g) {
			t.Fatalf("round %d: merge %v != gallop %v\nsmall=%v\nlarge=%v", round, m, g, small, large)
		}
		// Argument order must not matter.
		if gr := IntersectGallop(large, small); !reflect.DeepEqual(m, gr) {
			t.Fatalf("round %d: gallop not symmetric: %v vs %v", round, m, gr)
		}
	}
}

// TestIntersectEdgeCases pins the empty, singleton and duplicate-boundary
// shapes for both algorithms.
func TestIntersectEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		a, b []DocID
		want []DocID
	}{
		{"both-empty", nil, nil, nil},
		{"left-empty", nil, []DocID{1, 2, 3}, nil},
		{"right-empty", []DocID{1, 2, 3}, nil, nil},
		{"singletons-hit", []DocID{7}, []DocID{7}, []DocID{7}},
		{"singletons-miss", []DocID{7}, []DocID{8}, nil},
		{"singleton-vs-long", []DocID{5}, []DocID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, []DocID{5}},
		{"shared-low-boundary", []DocID{0, 9}, []DocID{0, 3, 5}, []DocID{0}},
		{"shared-high-boundary", []DocID{2, 9}, []DocID{4, 6, 9}, []DocID{9}},
		{"shared-both-boundaries", []DocID{1, 5, 9}, []DocID{1, 9}, []DocID{1, 9}},
		{"disjoint-interleaved", []DocID{1, 3, 5}, []DocID{2, 4, 6}, nil},
		{"identical", []DocID{2, 4, 6}, []DocID{2, 4, 6}, []DocID{2, 4, 6}},
	}
	for _, tc := range cases {
		if got := IntersectMerge(tc.a, tc.b); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: merge = %v, want %v", tc.name, got, tc.want)
		}
		if got := IntersectGallop(tc.a, tc.b); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: gallop = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestIntersectListsAdaptive checks the n-way fold against a brute-force
// membership count, and that the index-level Intersect still honours AND
// semantics.
func TestIntersectListsAdaptive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		nLists := 2 + rng.Intn(3)
		lists := make([][]DocID, nLists)
		for i := range lists {
			lists[i] = sortedUnique(rng, rng.Intn(80), 100)
		}
		counts := map[DocID]int{}
		for _, l := range lists {
			for _, d := range l {
				counts[d]++
			}
		}
		var want []DocID
		for d := DocID(0); d < 100; d++ {
			if counts[d] == nLists {
				want = append(want, d)
			}
		}
		got := IntersectLists(lists)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: IntersectLists = %v, want %v", round, got, want)
		}
	}

	ix := New()
	ix.Add(1, "alpha beta")
	ix.Add(2, "alpha beta gamma")
	ix.Add(3, "beta gamma")
	if got := ix.Intersect([]string{"alpha", "beta"}); !reflect.DeepEqual(got, []DocID{1, 2}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := ix.Intersect([]string{"alpha", "missing"}); got != nil {
		t.Fatalf("missing term should yield nil, got %v", got)
	}
	if got := ix.Intersect(nil); got != nil {
		t.Fatalf("empty query should yield nil, got %v", got)
	}
}
