// Package invindex implements an inverted index with TF/IDF statistics over
// arbitrary documents (relational tuples, XML subtrees, form descriptions).
// It is the IR substrate for keyword matching, SPARK-style scoring, data
// clouds and form ranking.
package invindex

import (
	"math"
	"sort"

	"kwsearch/internal/obs"
	"kwsearch/internal/relstore"
	"kwsearch/internal/text"
)

// DocID identifies an indexed document. When indexing a relstore database,
// DocID equals the tuple's global relstore.TupleID.
type DocID int32

// Posting records one (document, term frequency) pair.
type Posting struct {
	Doc DocID
	TF  int32
}

// Index is an append-only inverted index.
type Index struct {
	postings map[string][]Posting
	docLen   map[DocID]int
	totalLen int64
	numDocs  int

	// instr counters are nil until Instrument is called; obs counters
	// no-op on nil, so un-instrumented indexes pay one branch per event.
	lookups         *obs.Counter
	postingsScanned *obs.Counter
	gallopPicks     *obs.Counter
	mergePicks      *obs.Counter
}

// Instrument surfaces the index's work counters in reg:
// "<prefix>.lookups" (posting-list resolutions), ".postings_scanned"
// (postings returned by those lookups), ".intersect_gallop" and
// ".intersect_merge" (which pairwise intersection path IntersectLists
// chose). Call before concurrent use.
func (ix *Index) Instrument(reg *obs.Registry, prefix string) {
	ix.lookups = reg.Counter(prefix + ".lookups")
	ix.postingsScanned = reg.Counter(prefix + ".postings_scanned")
	ix.gallopPicks = reg.Counter(prefix + ".intersect_gallop")
	ix.mergePicks = reg.Counter(prefix + ".intersect_merge")
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: make(map[string][]Posting),
		docLen:   make(map[DocID]int),
	}
}

// Add tokenizes content and indexes it under doc. Calling Add twice with
// the same doc extends that document.
func (ix *Index) Add(doc DocID, content string) {
	toks := text.Tokenize(content)
	if _, seen := ix.docLen[doc]; !seen {
		ix.numDocs++
	}
	ix.docLen[doc] += len(toks)
	ix.totalLen += int64(len(toks))
	counts := make(map[string]int32, len(toks))
	for _, t := range toks {
		counts[t]++
	}
	for t, c := range counts {
		list := ix.postings[t]
		// Merge with an existing posting if this doc was added before.
		// Docs are normally added once each in increasing order, so the
		// backward scan usually stops at the first comparison; out-of-order
		// re-adds pay a full scan, which correctness requires.
		merged := false
		for i := len(list) - 1; i >= 0; i-- {
			if list[i].Doc == doc {
				list[i].TF += c
				merged = true
				break
			}
		}
		if !merged {
			list = append(list, Posting{Doc: doc, TF: c})
		}
		ix.postings[t] = list
	}
}

// FromDB indexes every tuple of db by its text columns.
func FromDB(db *relstore.DB) *Index {
	ix := New()
	for _, name := range db.TableNames() {
		t := db.Table(name)
		for _, tp := range t.Tuples() {
			if s := tp.Text(t.Schema); s != "" {
				ix.Add(DocID(tp.ID), s)
			}
		}
	}
	return ix
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return ix.numDocs }

// DocLen returns the token count of doc.
func (ix *Index) DocLen(doc DocID) int { return ix.docLen[doc] }

// AvgDocLen returns the mean document length.
func (ix *Index) AvgDocLen() float64 {
	if ix.numDocs == 0 {
		return 0
	}
	return float64(ix.totalLen) / float64(ix.numDocs)
}

// Postings returns the posting list of term, sorted by DocID. The slice is
// shared; callers must not mutate it.
func (ix *Index) Postings(term string) []Posting {
	list := ix.postings[text.Normalize(term)]
	if !sort.SliceIsSorted(list, func(i, j int) bool { return list[i].Doc < list[j].Doc }) {
		sort.Slice(list, func(i, j int) bool { return list[i].Doc < list[j].Doc })
	}
	ix.lookups.Inc()
	ix.postingsScanned.Add(uint64(len(list)))
	return list
}

// Docs returns just the document IDs matching term, sorted.
func (ix *Index) Docs(term string) []DocID {
	ps := ix.Postings(term)
	out := make([]DocID, len(ps))
	for i, p := range ps {
		out[i] = p.Doc
	}
	return out
}

// DF returns the document frequency of term.
func (ix *Index) DF(term string) int { return len(ix.Postings(term)) }

// TF returns the term frequency of term in doc (0 if absent).
func (ix *Index) TF(term string, doc DocID) int {
	ps := ix.Postings(term)
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Doc >= doc })
	if i < len(ps) && ps[i].Doc == doc {
		return int(ps[i].TF)
	}
	return 0
}

// IDF returns ln((N+1)/(df+1)) + 1, a smoothed inverse document frequency
// that stays positive for ubiquitous terms.
func (ix *Index) IDF(term string) float64 {
	return math.Log(float64(ix.numDocs+1)/float64(ix.DF(term)+1)) + 1
}

// Terms returns all indexed terms, sorted.
func (ix *Index) Terms() []string {
	out := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// HasTerm reports whether the term occurs in the corpus.
func (ix *Index) HasTerm(term string) bool { return ix.DF(term) > 0 }

// tfWeight is the log-scaled term-frequency factor 1+ln(tf), shared by
// TFIDF and TermWeights so per-term accumulation of weights reproduces
// Score bit-for-bit.
func tfWeight(tf int32) float64 { return 1 + math.Log(float64(tf)) }

// TFIDF returns the TF·IDF weight of term in doc with log-scaled TF:
// (1+ln(tf))·idf, or 0 when absent.
func (ix *Index) TFIDF(term string, doc DocID) float64 {
	tf := ix.TF(term, doc)
	if tf == 0 {
		return 0
	}
	return tfWeight(int32(tf)) * ix.IDF(term)
}

// TermWeights returns term's posting list together with each posting's
// TF·IDF weight — one pass over the list instead of a binary search per
// document, which is what makes index-driven keyword binding O(matched
// tuples). The weight expression is exactly TFIDF's, so summing a
// document's weights over the query terms (in term order) yields the
// same float64 bits as Score. The posting slice is shared; callers must
// not mutate it.
func (ix *Index) TermWeights(term string) ([]Posting, []float64) {
	ps := ix.Postings(term)
	if len(ps) == 0 {
		return ps, nil
	}
	idf := ix.IDF(term)
	ws := make([]float64, len(ps))
	for i, p := range ps {
		ws[i] = tfWeight(p.TF) * idf
	}
	return ps, ws
}

// Score sums TFIDF over the query terms for doc — the basic vector-space
// relevance used as a building block by the ranking packages.
func (ix *Index) Score(queryTerms []string, doc DocID) float64 {
	s := 0.0
	for _, t := range queryTerms {
		s += ix.TFIDF(t, doc)
	}
	return s
}

// GallopCrossover is the list-length ratio past which Intersect switches
// from the linear merge to galloping: when |large|/|small| meets or
// exceeds it, the O(|small|·log|large|) exponential search wins over the
// O(|small|+|large|) merge. The value was measured with
// BenchmarkIntersectGallopVsMerge (bench_test.go): on this container the
// crossover sits between ratio 4 and 16, and 8 is the conservative
// midpoint — merge keeps its streaming advantage below it.
const GallopCrossover = 8

// IntersectMerge intersects two sorted, duplicate-free DocID lists by
// linear merge — the baseline that wins when the lists have comparable
// lengths.
func IntersectMerge(a, b []DocID) []DocID {
	var out []DocID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// gallopSearch returns the first index k >= lo with list[k] >= target,
// probing at exponentially growing strides from lo before binary-searching
// the bracketed range — O(log distance) rather than O(log |list|), which
// is what makes skewed intersections cheap.
func gallopSearch(list []DocID, lo int, target DocID) int {
	if lo >= len(list) || list[lo] >= target {
		return lo
	}
	step := 1
	hi := lo + 1
	for hi < len(list) && list[hi] < target {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > len(list) {
		hi = len(list)
	}
	return lo + 1 + sort.Search(hi-lo-1, func(k int) bool { return list[lo+1+k] >= target })
}

// IntersectGallop intersects two sorted, duplicate-free DocID lists by
// galloping (exponential search) in the longer list — the winner when the
// lengths are skewed past GallopCrossover. The arguments may be given in
// either order.
func IntersectGallop(a, b []DocID) []DocID {
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	var out []DocID
	pos := 0
	for _, d := range small {
		pos = gallopSearch(large, pos, d)
		if pos == len(large) {
			break
		}
		if large[pos] == d {
			out = append(out, d)
			pos++
		}
	}
	return out
}

// IntersectLists folds sorted, duplicate-free DocID lists smallest-first,
// choosing galloping over linear merge per pair once the length skew
// passes GallopCrossover. Zero lists yield nil; any empty list yields an
// empty intersection.
func IntersectLists(lists [][]DocID) []DocID {
	return intersectListsCounted(lists, nil, nil)
}

// intersectListsCounted is IntersectLists with per-path counters: each
// pairwise fold step increments gallop or merge according to the path
// taken (nil counters no-op).
func intersectListsCounted(lists [][]DocID, gallop, merge *obs.Counter) []DocID {
	if len(lists) == 0 {
		return nil
	}
	sorted := make([][]DocID, len(lists))
	copy(sorted, lists)
	sort.SliceStable(sorted, func(i, j int) bool { return len(sorted[i]) < len(sorted[j]) })
	out := sorted[0]
	for _, other := range sorted[1:] {
		if len(out) == 0 {
			return nil
		}
		if len(other) >= GallopCrossover*len(out) {
			gallop.Inc()
			out = IntersectGallop(out, other)
		} else {
			merge.Inc()
			out = IntersectMerge(out, other)
		}
	}
	return out
}

// Intersect returns the documents containing every term, sorted. An empty
// term list yields nil. Pairwise intersections switch between linear
// merge and galloping search based on GallopCrossover.
func (ix *Index) Intersect(terms []string) []DocID {
	if len(terms) == 0 {
		return nil
	}
	lists := make([][]DocID, len(terms))
	for i, t := range terms {
		lists[i] = ix.Docs(t)
		if len(lists[i]) == 0 {
			return nil
		}
	}
	return intersectListsCounted(lists, ix.gallopPicks, ix.mergePicks)
}

// Union returns the documents containing any of the terms, sorted and
// deduplicated.
func (ix *Index) Union(terms []string) []DocID {
	seen := map[DocID]bool{}
	var out []DocID
	for _, t := range terms {
		for _, p := range ix.Postings(t) {
			if !seen[p.Doc] {
				seen[p.Doc] = true
				out = append(out, p.Doc)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
