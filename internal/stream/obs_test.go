package stream

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"kwsearch/internal/obs"
)

// TestPipelineSpanTreeWellFormed drives a real multi-producer pipeline
// run while growing one span tree from every goroutine involved —
// producers, consumer and the feeding loop all create children and set
// attributes concurrently. The tree must come out well-formed (every
// span ended, children nested within parents) and structurally complete.
// Run with -race.
func TestPipelineSpanTreeWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	db, cns, terms := setup(t)
	all := allTuples(db, 17)

	root := obs.StartSpan("stream-query")
	p := NewPipeline(NewMesh(db, terms, cns), 4)

	csp := root.Child("consume")
	consumerDone := make(chan struct{})
	results := 0
	go func() {
		defer close(consumerDone)
		for range p.Results() {
			results++
		}
		csp.SetAttr("results", results)
		csp.End()
	}()

	const producers = 4
	// Producer spans are created before the goroutines start, so the
	// root's child list is deterministic: consume + one per producer.
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		psp := root.Child("produce-" + strconv.Itoa(w))
		wg.Add(1)
		go func(w int, psp *obs.Span) {
			defer wg.Done()
			fed := 0
			for i := w; i < len(all); i += producers {
				// A per-tuple child exercises concurrent tree growth on
				// sibling branches.
				tsp := psp.Child("feed")
				if !p.Feed(all[i]) {
					tsp.End()
					break
				}
				fed++
				tsp.SetAttr("n", fed)
				tsp.End()
			}
			psp.SetAttr("fed", fed)
			psp.End()
		}(w, psp)
	}
	wg.Wait()
	p.Finish()
	<-consumerDone
	root.SetAttr("results", results)
	root.End()

	if err := root.WellFormed(time.Minute); err != nil {
		t.Fatal(err)
	}
	kids := root.Children()
	if len(kids) != producers+1 {
		t.Fatalf("root has %d children, want %d", len(kids), producers+1)
	}
	totalFeeds := 0
	for _, c := range kids {
		if c.Name() == "consume" {
			continue
		}
		fed, ok := c.Attr("fed")
		if !ok {
			t.Fatalf("producer span %s missing fed attr", c.Name())
		}
		if got := len(c.Children()); got < fed.(int) {
			t.Fatalf("producer %s has %d feed children for %d feeds", c.Name(), got, fed)
		}
		totalFeeds += fed.(int)
	}
	if totalFeeds != len(all) {
		t.Fatalf("producers fed %d tuples, want %d", totalFeeds, len(all))
	}
	if results == 0 {
		t.Fatal("pipeline emitted nothing; span test is vacuous")
	}
}
