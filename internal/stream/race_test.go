package stream

import (
	"math/rand"
	"sync"
	"testing"

	"kwsearch/internal/relstore"
)

// allTuples returns every tuple of the database in a deterministic
// shuffled order.
func allTuples(db *relstore.DB, seed int64) []*relstore.Tuple {
	var all []*relstore.Tuple
	for _, name := range db.TableNames() {
		all = append(all, db.Table(name).Tuples()...)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all
}

// TestPipelineMatchesSequential: a single-producer pipeline must emit
// exactly what direct Arrive calls in the same order emit.
func TestPipelineMatchesSequential(t *testing.T) {
	db, cns, terms := setup(t)
	order := allTuples(db, 7)

	want := streamAll(db, cns, terms, order)
	got := map[string]int{}
	for _, r := range Drain(NewMesh(db, terms, cns), order, 8) {
		got[resultKey(r)]++
	}
	if len(want) == 0 {
		t.Fatal("sequential streaming produced nothing; test is vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("pipeline emitted %d distinct results, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("result %s emitted %d times, want %d", k, got[k], n)
		}
	}
}

// TestPipelineConcurrentProducers stresses the mesh behind concurrent
// producers with a graceful Finish: whatever order the feed channel
// serializes, the emitted multiset must equal the batch evaluation
// (every joining tree exactly once — the mesh's exactly-once guarantee
// is order-independent). Run with -race.
func TestPipelineConcurrentProducers(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	db, cns, terms := setup(t)
	want := batchResults(t, db, cns, terms)
	all := allTuples(db, 11)

	const producers = 4
	for round := 0; round < 5; round++ {
		p := NewPipeline(NewMesh(db, terms, cns), 4)
		got := map[string]int{}
		consumerDone := make(chan struct{})
		go func() {
			defer close(consumerDone)
			for r := range p.Results() {
				got[resultKey(r)]++
			}
		}()

		var wg sync.WaitGroup
		for w := 0; w < producers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(all); i += producers {
					if !p.Feed(all[i]) {
						t.Errorf("Feed rejected tuple before shutdown")
						return
					}
				}
			}(w)
		}
		wg.Wait()
		p.Finish()
		<-consumerDone

		if len(got) != len(want) {
			t.Fatalf("round %d: %d distinct results, want %d", round, len(got), len(want))
		}
		for k := range want {
			if got[k] != 1 {
				t.Fatalf("round %d: result %s emitted %d times, want exactly once", round, k, got[k])
			}
		}
	}
}

// TestPipelineAbortUnderLoad stresses the hard-shutdown path: producers
// keep feeding while the consumer reads only a few results and then
// Closes mid-flight. The test passes if nothing deadlocks, Feed starts
// returning false, the results channel closes, and -race stays quiet.
func TestPipelineAbortUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	db, cns, terms := setup(t)
	all := allTuples(db, 13)

	for round := 0; round < 10; round++ {
		p := NewPipeline(NewMesh(db, terms, cns), 2)

		var wg sync.WaitGroup
		rejected := make([]bool, 4)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for loop := 0; ; loop++ {
					if !p.Feed(all[(loop*4+w)%len(all)]) {
						rejected[w] = true
						return
					}
				}
			}(w)
		}

		// Consume a handful of results (there may be fewer if the abort
		// races ahead), then pull the plug while producers are running.
		taken := 0
		for taken < round && taken < 5 {
			if _, ok := <-p.Results(); !ok {
				t.Fatal("results channel closed before Close")
			}
			taken++
		}
		p.Close()
		wg.Wait()
		for w, r := range rejected {
			if !r {
				t.Fatalf("round %d: producer %d exited without seeing shutdown", round, w)
			}
		}
		// After Close the results channel must drain to closed.
		for range p.Results() {
		}
		if p.Feed(all[0]) {
			t.Fatal("Feed accepted a tuple after Close")
		}
	}
}
