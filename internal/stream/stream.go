// Package stream implements keyword search over relational data streams in
// the spirit of the Operator Mesh (Markowetz et al. SIGMOD'07, slide 134):
// candidate networks stay armed as continuous queries; each arriving tuple
// joins against the buffered prefix state of every CN it can occupy, and a
// joining tree of tuples is emitted exactly once — when its last tuple
// arrives. No CN can be pruned a priori (the stream may deliver matches for
// any of them), which is the slide's point.
package stream

import (
	"kwsearch/internal/cn"
	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
	"kwsearch/internal/text"
)

// Mesh is the armed continuous query: per-CN buffers plus incremental
// join indexes over the tuples seen so far.
type Mesh struct {
	db    *relstore.DB
	terms []string
	cns   []*cn.CN
	ix    *invindex.Index

	// seenByTable buffers arrived tuples per relation.
	seenByTable map[string][]*relstore.Tuple
	// valueIndex indexes arrived tuples by (table, column, value).
	valueIndex map[string]map[string]map[relstore.Value][]*relstore.Tuple
	// masks caches each arrived tuple's query-term bitmask.
	masks map[relstore.TupleID]uint32
	// Window bounds the number of buffered tuples per relation (0 =
	// unbounded); older tuples are evicted FIFO, the usual stream window.
	Window int

	evicted map[relstore.TupleID]bool
}

// NewMesh arms the CNs for the query terms over db's schema. Tuples are
// reported with Arrive as they "stream in".
func NewMesh(db *relstore.DB, terms []string, cns []*cn.CN) *Mesh {
	norm := make([]string, 0, len(terms))
	for _, t := range terms {
		if n := text.Normalize(t); n != "" {
			norm = append(norm, n)
		}
	}
	return &Mesh{
		db:          db,
		terms:       norm,
		cns:         cns,
		seenByTable: map[string][]*relstore.Tuple{},
		valueIndex:  map[string]map[string]map[relstore.Value][]*relstore.Tuple{},
		masks:       map[relstore.TupleID]uint32{},
		evicted:     map[relstore.TupleID]bool{},
	}
}

// Seen reports the number of buffered tuples.
func (m *Mesh) Seen() int {
	n := 0
	for _, ts := range m.seenByTable {
		n += len(ts)
	}
	return n
}

func (m *Mesh) maskOf(tp *relstore.Tuple) uint32 {
	t := m.db.Table(tp.Table)
	if t == nil {
		return 0
	}
	txt := tp.Text(t.Schema)
	var mask uint32
	for i, term := range m.terms {
		if text.Contains(txt, term) {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

func (m *Mesh) index(tp *relstore.Tuple) {
	t := m.db.Table(tp.Table)
	byCol, ok := m.valueIndex[tp.Table]
	if !ok {
		byCol = map[string]map[relstore.Value][]*relstore.Tuple{}
		m.valueIndex[tp.Table] = byCol
	}
	for ci, col := range t.Schema.Columns {
		v := tp.Values[ci]
		if v.IsNull() {
			continue
		}
		byVal, ok := byCol[col.Name]
		if !ok {
			byVal = map[relstore.Value][]*relstore.Tuple{}
			byCol[col.Name] = byVal
		}
		byVal[v] = append(byVal[v], tp)
	}
}

// Arrive feeds one tuple into the mesh and returns the joining trees it
// completes. The tuple must belong to a table of m's database (it need not
// be stored there — the mesh keeps its own buffers).
func (m *Mesh) Arrive(tp *relstore.Tuple) []cn.Result {
	if m.db.Table(tp.Table) == nil {
		return nil // not part of this schema
	}
	mask := m.maskOf(tp)
	m.masks[tp.ID] = mask
	m.seenByTable[tp.Table] = append(m.seenByTable[tp.Table], tp)
	m.index(tp)
	if m.Window > 0 && len(m.seenByTable[tp.Table]) > m.Window {
		old := m.seenByTable[tp.Table][0]
		m.seenByTable[tp.Table] = m.seenByTable[tp.Table][1:]
		m.evicted[old.ID] = true
	}

	var out []cn.Result
	for _, c := range m.cns {
		for ni, spec := range c.Nodes {
			if spec.Table != tp.Table {
				continue
			}
			if (mask != 0) == spec.Free {
				continue // keyword node needs a match, free node a non-match
			}
			out = append(out, m.join(c, ni, tp)...)
		}
	}
	return out
}

// join enumerates completions of c with node fixed to tp, drawing the
// other nodes from buffered tuples — and, to guarantee exactly-once
// emission, only from tuples that arrived strictly before tp.
func (m *Mesh) join(c *cn.CN, fixed int, tp *relstore.Tuple) []cn.Result {
	adj := make([][]int, len(c.Nodes))
	for ei, e := range c.Edges {
		adj[e.A] = append(adj[e.A], ei)
		adj[e.B] = append(adj[e.B], ei)
	}
	order := []int{fixed}
	parent := map[int]int{fixed: -1}
	via := map[int]cn.EdgeSpec{}
	for qi := 0; qi < len(order); qi++ {
		n := order[qi]
		for _, ei := range adj[n] {
			e := c.Edges[ei]
			other := e.A
			if other == n {
				other = e.B
			}
			if _, seen := parent[other]; seen {
				continue
			}
			parent[other] = n
			via[other] = e
			order = append(order, other)
		}
	}

	full := (uint32(1) << uint(len(m.terms))) - 1
	binding := make([]*relstore.Tuple, len(c.Nodes))
	var out []cn.Result
	var rec func(oi int)
	rec = func(oi int) {
		if oi == len(order) {
			var cover uint32
			for _, b := range binding {
				cover |= m.masks[b.ID]
			}
			if cover != full {
				return
			}
			if !m.minimal(c, binding, full) {
				return
			}
			tuples := make([]*relstore.Tuple, len(binding))
			copy(tuples, binding)
			out = append(out, cn.Result{CN: c, Tuples: tuples})
			return
		}
		node := order[oi]
		var cands []*relstore.Tuple
		if oi == 0 {
			cands = []*relstore.Tuple{tp}
		} else {
			cands = m.candidates(c, via[node], parent[node], binding[parent[node]], node)
		}
		for _, cand := range cands {
			if oi > 0 && (cand.ID == tp.ID || m.evicted[cand.ID]) {
				continue // strictly-earlier arrivals only
			}
			dup := false
			for _, b := range binding {
				if b != nil && b.ID == cand.ID {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			binding[node] = cand
			rec(oi + 1)
			binding[node] = nil
		}
	}
	rec(0)
	return out
}

// candidates resolves join partners for node `to` from the buffered value
// index, filtered to the node's keyword/free status.
func (m *Mesh) candidates(c *cn.CN, e cn.EdgeSpec, from int, bound *relstore.Tuple, to int) []*relstore.Tuple {
	fromTable := m.db.Table(c.Nodes[from].Table)
	toSpec := c.Nodes[to]
	var fromCol, toCol string
	if e.Via.From == c.Nodes[from].Table && e.Via.To == toSpec.Table {
		fromCol, toCol = e.Via.FromCol, e.Via.ToCol
	} else {
		fromCol, toCol = e.Via.ToCol, e.Via.FromCol
	}
	if e.Via.From == e.Via.To {
		if from == e.A {
			fromCol, toCol = e.Via.FromCol, e.Via.ToCol
		} else {
			fromCol, toCol = e.Via.ToCol, e.Via.FromCol
		}
	}
	v := fromTable.Value(bound, fromCol)
	if v.IsNull() {
		return nil
	}
	byCol, ok := m.valueIndex[toSpec.Table]
	if !ok {
		return nil
	}
	var out []*relstore.Tuple
	for _, cand := range byCol[toCol][v] {
		inKW := m.masks[cand.ID] != 0
		if inKW != toSpec.Free {
			out = append(out, cand)
		}
	}
	return out
}

// minimal mirrors the batch evaluator's MTJNT condition: dropping any leaf
// must lose a keyword.
func (m *Mesh) minimal(c *cn.CN, binding []*relstore.Tuple, full uint32) bool {
	if len(c.Nodes) == 1 {
		return true
	}
	deg := make([]int, len(c.Nodes))
	for _, e := range c.Edges {
		deg[e.A]++
		deg[e.B]++
	}
	for li := range c.Nodes {
		if deg[li] > 1 {
			continue
		}
		var rest uint32
		for i, b := range binding {
			if i == li {
				continue
			}
			rest |= m.masks[b.ID]
		}
		if rest == full {
			return false
		}
	}
	return true
}
