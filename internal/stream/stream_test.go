package stream

import (
	"math/rand"
	"sort"
	"strconv"
	"testing"

	"kwsearch/internal/cn"
	"kwsearch/internal/dataset"
	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
	"kwsearch/internal/schemagraph"
)

func setup(t *testing.T) (*relstore.DB, []*cn.CN, []string) {
	t.Helper()
	db := dataset.WidomBib()
	ix := invindex.FromDB(db)
	terms := []string{"widom", "xml"}
	ev := cn.NewEvaluator(db, ix, terms)
	g := schemagraph.FromDB(db)
	cns := cn.Enumerate(g, cn.EnumerateOptions{
		MaxSize:       5,
		KeywordTables: ev.KeywordTables(),
		FreeTables:    []string{"write"},
	})
	return db, cns, terms
}

func resultKey(r cn.Result) string {
	ids := make([]int, len(r.Tuples))
	for i, tp := range r.Tuples {
		ids[i] = int(tp.ID)
	}
	sort.Ints(ids)
	key := r.CN.Canonical() + "|"
	for _, id := range ids {
		key += strconv.Itoa(id) + ","
	}
	return key
}

// streamAll feeds every tuple in the given order and returns all emitted
// result keys.
func streamAll(db *relstore.DB, cns []*cn.CN, terms []string, order []*relstore.Tuple) map[string]int {
	m := NewMesh(db, terms, cns)
	emitted := map[string]int{}
	for _, tp := range order {
		for _, r := range m.Arrive(tp) {
			emitted[resultKey(r)]++
		}
	}
	return emitted
}

func batchResults(t *testing.T, db *relstore.DB, cns []*cn.CN, terms []string) map[string]bool {
	t.Helper()
	ix := invindex.FromDB(db)
	ev := cn.NewEvaluator(db, ix, terms)
	out := map[string]bool{}
	for _, c := range cns {
		for _, r := range ev.EvaluateCN(c) {
			out[resultKey(r)] = true
		}
	}
	return out
}

// TestStreamMatchesBatch: streaming all tuples (any order) emits exactly
// the batch evaluation's results, each exactly once.
func TestStreamMatchesBatch(t *testing.T) {
	db, cns, terms := setup(t)
	want := batchResults(t, db, cns, terms)
	if len(want) == 0 {
		t.Fatal("batch produced nothing")
	}
	var all []*relstore.Tuple
	for _, name := range db.TableNames() {
		all = append(all, db.Table(name).Tuples()...)
	}
	for seed := int64(0); seed < 5; seed++ {
		order := append([]*relstore.Tuple(nil), all...)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		emitted := streamAll(db, cns, terms, order)
		if len(emitted) != len(want) {
			t.Fatalf("seed %d: emitted %d results, want %d", seed, len(emitted), len(want))
		}
		for key, n := range emitted {
			if !want[key] {
				t.Fatalf("seed %d: spurious result %s", seed, key)
			}
			if n != 1 {
				t.Fatalf("seed %d: result %s emitted %d times", seed, key, n)
			}
		}
	}
}

func TestStreamIncrementalEmission(t *testing.T) {
	db, cns, terms := setup(t)
	// Feed author Widom, paper XML streams, then the connecting write:
	// the result must appear only on the final arrival.
	authors := db.Table("author").Tuples()
	papers := db.Table("paper").Tuples()
	writes := db.Table("write").Tuples()
	m := NewMesh(db, terms, cns)
	if got := m.Arrive(authors[0]); len(got) != 0 {
		t.Fatalf("premature emission: %v", got)
	}
	if got := m.Arrive(papers[0]); len(got) != 0 {
		t.Fatalf("premature emission after paper: %v", got)
	}
	got := m.Arrive(writes[0]) // (widom, xml streams)
	if len(got) != 1 {
		t.Fatalf("expected the A-W-P result on the write arrival, got %d", len(got))
	}
	if m.Seen() != 3 {
		t.Errorf("Seen = %d", m.Seen())
	}
}

func TestStreamWindowEviction(t *testing.T) {
	db, cns, terms := setup(t)
	m := NewMesh(db, terms, cns)
	m.Window = 1
	authors := db.Table("author").Tuples()
	papers := db.Table("paper").Tuples()
	writes := db.Table("write").Tuples()
	m.Arrive(authors[0])
	m.Arrive(authors[1]) // evicts Widom from the author buffer
	m.Arrive(papers[0])
	got := m.Arrive(writes[0])
	if len(got) != 0 {
		t.Fatalf("evicted tuple still joined: %v", got)
	}
}

func TestStreamIgnoresForeignTuples(t *testing.T) {
	db, cns, terms := setup(t)
	m := NewMesh(db, terms, cns)
	alien := &relstore.Tuple{ID: 999, Table: "nosuch"}
	if got := m.Arrive(alien); got != nil {
		t.Fatalf("alien tuple produced %v", got)
	}
}
