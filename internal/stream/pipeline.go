package stream

import (
	"sync"

	"kwsearch/internal/cn"
	"kwsearch/internal/relstore"
)

// Pipeline runs a Mesh behind channels so that many producers can feed
// tuples concurrently while one consumer drains completed joining trees.
// The mesh itself stays single-threaded: exactly one worker goroutine
// owns it and applies arrivals in the order they win the feed channel,
// which preserves the mesh's strictly-earlier-arrivals exactly-once
// guarantee without locking its maps.
//
//	p := NewPipeline(mesh, 64)
//	go func() { for _, tp := range tuples { p.Feed(tp) }; p.Finish() }()
//	for r := range p.Results() { ... }
//
// Shutdown has two modes: Finish stops accepting new tuples but lets
// everything already fed complete; Close aborts, dropping queued tuples.
// Both are idempotent and safe to call concurrently with Feed: a feed
// racing a shutdown either wins (the tuple is processed or queued) or
// loses (Feed returns false); none block forever and none panic on a
// closed channel.
type Pipeline struct {
	mesh *Mesh

	in   chan *relstore.Tuple
	out  chan cn.Result
	quit chan struct{}

	// mu guards closed: Feed holds it shared while sending so that the
	// shutdown paths cannot close the feed channel under a send.
	mu     sync.RWMutex
	closed bool

	abort sync.Once
	wg    sync.WaitGroup
}

// NewPipeline arms mesh behind buffered feed/result channels of the
// given capacity (minimum 1) and starts the worker goroutine. The caller
// must not use mesh directly afterwards.
func NewPipeline(mesh *Mesh, buf int) *Pipeline {
	if buf < 1 {
		buf = 1
	}
	p := &Pipeline{
		mesh: mesh,
		in:   make(chan *relstore.Tuple, buf),
		out:  make(chan cn.Result, buf),
		quit: make(chan struct{}),
	}
	p.wg.Add(1)
	go p.run()
	return p
}

// run is the single goroutine that owns the mesh.
func (p *Pipeline) run() {
	defer p.wg.Done()
	defer close(p.out)
	for {
		select {
		case <-p.quit:
			return
		case tp, ok := <-p.in:
			if !ok {
				return // Finish: feed closed and drained
			}
			for _, r := range p.mesh.Arrive(tp) {
				select {
				case p.out <- r:
				case <-p.quit:
					return
				}
			}
		}
	}
}

// Feed offers one tuple to the mesh, blocking while the feed buffer is
// full. It reports whether the tuple was accepted; false means the
// pipeline is shut down. Safe for concurrent use — but note that when
// multiple producers race, the arrival order (and therefore which tuple
// "completes" a joining tree) is whichever order the channel serializes.
func (p *Pipeline) Feed(tp *relstore.Tuple) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	//lint:ignore lockhold intentional: Close signals quit before taking the write lock, so a Feed parked here under RLock always unblocks
	case p.in <- tp:
		return true
	//lint:ignore lockhold intentional: the quit receive is the escape hatch that makes parking under RLock safe
	case <-p.quit:
		return false
	}
}

// Results returns the channel of completed joining trees. It is closed
// when the worker exits (after Finish has drained, or on Close).
func (p *Pipeline) Results() <-chan cn.Result {
	return p.out
}

// Finish stops accepting tuples, waits for every queued tuple to be
// processed and its results delivered, then closes the results channel.
// A consumer must be draining Results or Finish cannot complete.
func (p *Pipeline) Finish() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.in)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Close aborts the pipeline: queued tuples are dropped, the results
// channel is closed, and the worker is gone when Close returns.
func (p *Pipeline) Close() {
	// Signal quit before taking the lock: a Feed blocked on a full
	// buffer holds the read lock and only the quit signal unblocks it.
	p.abort.Do(func() { close(p.quit) })
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.wg.Wait()
}

// Drain feeds every tuple, finishes the pipeline, and returns the
// collected results in completion order — the synchronous convenience
// wrapper, equivalent to calling mesh.Arrive in a loop.
func Drain(mesh *Mesh, tuples []*relstore.Tuple, buf int) []cn.Result {
	p := NewPipeline(mesh, buf)
	var results []cn.Result
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range p.Results() {
			results = append(results, r)
		}
	}()
	for _, tp := range tuples {
		p.Feed(tp)
	}
	p.Finish()
	<-done
	return results
}
