package main

// End-to-end tests for the CLI's typed exit codes and partial-results
// banner: they build the real binary and run it, because exit codes are
// a process-boundary contract no in-process test can pin.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var kwsearchBin string

func TestMain(m *testing.M) {
	if _, err := exec.LookPath("go"); err != nil {
		fmt.Fprintln(os.Stderr, "skipping kwsearch e2e tests: go tool not found")
		os.Exit(0)
	}
	dir, err := os.MkdirTemp("", "kwsearch-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	kwsearchBin = filepath.Join(dir, "kwsearch")
	if out, err := exec.Command("go", "build", "-o", kwsearchBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "go build kwsearch: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// runCLI executes the built binary and returns exit code, stdout, stderr.
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(kwsearchBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	if err == nil {
		return 0, stdout.String(), stderr.String()
	}
	var exit *exec.ExitError
	if !errors.As(err, &exit) {
		t.Fatalf("kwsearch %v: %v", args, err)
	}
	return exit.ExitCode(), stdout.String(), stderr.String()
}

func TestExitCodeBadQuery(t *testing.T) {
	// CN semantics against an XML dataset cannot execute: typed as
	// ErrBadQuery by the engine, exit 3 by the CLI.
	code, _, stderr := runCLI(t, "-data", "auctions", "-semantics", "cn", "seller", "Tom")
	if code != 3 {
		t.Fatalf("exit %d, want 3; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "bad query") {
		t.Errorf("stderr does not mention the typed cause:\n%s", stderr)
	}
}

func TestExitCodeShed(t *testing.T) {
	// 16 concurrent runs against a gate with one slot and no queue: the
	// burst must shed and the exit code must say so. The query asks for
	// k=10000 so each run's serial evaluation outlasts a scheduler
	// quantum even on one core — a fast query can serialize the whole
	// burst and nothing sheds (binding from posting lists made the
	// default query quick enough for exactly that). Scheduling could
	// still in principle serialize it, so allow a few attempts.
	for attempt := 0; attempt < 3; attempt++ {
		code, _, stderr := runCLI(t, "-n", "16", "-admit", "1", "-admit-queue", "0", "-k", "10000", "keyword", "search")
		if code == 4 {
			if !strings.Contains(stderr, "shed=") {
				t.Errorf("stderr missing the concurrent-runs summary:\n%s", stderr)
			}
			return
		}
		t.Logf("attempt %d: exit %d, retrying; stderr:\n%s", attempt, code, stderr)
	}
	t.Fatal("no run exited 4 (shed) across 3 attempts of a 16-way burst at capacity 1")
}

func TestExitCodeDeadlineWhileQueued(t *testing.T) {
	// A 1ns deadline is expired by the time admission control sees it
	// (two clock reads are >1ns apart), so the gate must refuse with the
	// typed deadline error — exit 5 — rather than admit a dead query.
	for attempt := 0; attempt < 3; attempt++ {
		code, _, stderr := runCLI(t, "-admit", "1", "-deadline", "1ns", "keyword", "search")
		if code == 5 {
			if !strings.Contains(stderr, "deadline") {
				t.Errorf("stderr does not mention the typed cause:\n%s", stderr)
			}
			return
		}
		t.Logf("attempt %d: exit %d, retrying; stderr:\n%s", attempt, code, stderr)
	}
	t.Fatal("no run exited 5 (deadline while queued) across 3 attempts with a 1ns deadline")
}

func TestPartialResultsBannerExitsZero(t *testing.T) {
	// Without a gate, an expiring deadline is a success: exit 0, with the
	// partial banner on stdout. 100µs is far below the query's serial
	// evaluation time, so the budget always expires mid-evaluation.
	code, stdout, stderr := runCLI(t, "-data", "dblp", "-k", "10000", "-deadline", "100us", "keyword", "search")
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "partial results") {
		t.Fatalf("stdout missing the partial-results banner:\n%s", stdout)
	}
}

func TestExitCodeUsage(t *testing.T) {
	code, _, _ := runCLI(t, "-data", "nope", "keyword")
	if code != 2 {
		t.Fatalf("unknown dataset: exit %d, want 2", code)
	}
	code, _, _ = runCLI(t, "-semantics", "nope", "keyword")
	if code != 2 {
		t.Fatalf("unknown semantics: exit %d, want 2", code)
	}
}
