// Command kwsearch runs keyword queries over the built-in datasets under a
// selectable result semantics.
//
// Usage:
//
//	kwsearch -data dblp -semantics cn -k 5 keyword search
//	kwsearch -data seltzer -semantics banks Seltzer Berkeley
//	kwsearch -data auctions -semantics slca seller Tom
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kwsearch/internal/core"
	"kwsearch/internal/dataset"
	"kwsearch/internal/snippet"
)

func main() {
	data := flag.String("data", "dblp", "dataset: dblp | widom | seltzer | products | events | auctions | conf | bib")
	sem := flag.String("semantics", "auto", "auto | cn | spark | banks | steiner | slca | elca")
	k := flag.Int("k", 10, "number of results")
	doClean := flag.Bool("clean", false, "run noisy-channel query cleaning first")
	snip := flag.Bool("snippets", false, "print snippets for XML results")
	workers := flag.Int("workers", 1, "worker-pool size for cn/slca evaluation (>1 enables the parallel executor)")
	stats := flag.Bool("stats", false, "print execution-layer statistics after the search")
	flag.Parse()
	query := strings.Join(flag.Args(), " ")
	if query == "" {
		fmt.Fprintln(os.Stderr, "usage: kwsearch [flags] keyword...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	engine, err := buildEngine(*data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	semantics, err := parseSemantics(*sem)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *doClean && engine.Cleaner != nil {
		cleaned := engine.Cleaner.Clean(query)
		fmt.Printf("cleaned query: %s\n", cleaned)
	}
	results, err := engine.Search(query, core.Options{
		K: *k, Semantics: semantics, Clean: *doClean, Workers: *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Println("no results")
		return
	}
	terms := engine.Terms(query, *doClean)
	for i, r := range results {
		fmt.Printf("%2d. %s\n", i+1, r)
		if *snip && r.Node != nil {
			for _, it := range snippet.Generate(r.Node, terms, 4) {
				fmt.Printf("      %s: %s\n", it.Label, it.Value)
			}
		}
	}
	if *stats && engine.Exec != nil {
		printExecStats(engine)
	}
}

// printExecStats reports the execution layer's work breakdown and cache
// counters for the search that just ran.
func printExecStats(engine *core.Engine) {
	st := engine.LastExecStats
	fmt.Printf("exec: workers=%d cns=%d evaluated=%d skipped=%d prefix-reuses=%d result-cache-hit=%v\n",
		st.Workers, st.CNs, st.Evaluated, st.Skipped, st.PrefixReuses, st.ResultCacheHit)
	if len(st.JobsPerWorker) > 0 {
		fmt.Printf("exec: jobs per worker %v\n", st.JobsPerWorker)
	}
	postings, results := engine.Exec.CacheStats()
	fmt.Printf("cache: postings hits=%d misses=%d evicted=%d entries=%d (hit rate %.2f)\n",
		postings.Hits, postings.Misses, postings.Evictions, postings.Entries, postings.HitRate())
	fmt.Printf("cache: results  hits=%d misses=%d evicted=%d entries=%d (hit rate %.2f)\n",
		results.Hits, results.Misses, results.Evictions, results.Entries, results.HitRate())
}

func buildEngine(data string) (*core.Engine, error) {
	switch data {
	case "dblp":
		return core.NewRelational(dataset.DBLP(dataset.DefaultDBLPConfig())), nil
	case "widom":
		return core.NewRelational(dataset.WidomBib()), nil
	case "seltzer":
		return core.NewRelational(dataset.SeltzerBerkeley()), nil
	case "products":
		return core.NewRelational(dataset.Products()), nil
	case "events":
		return core.NewRelational(dataset.EventsDB()), nil
	case "auctions":
		return core.NewXML(dataset.AuctionsXML()), nil
	case "conf":
		return core.NewXML(dataset.ConfDemoXML()), nil
	case "bib":
		return core.NewXML(dataset.BibXML(dataset.DefaultBibConfig())), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", data)
}

func parseSemantics(s string) (core.Semantics, error) {
	switch s {
	case "auto":
		return core.Auto, nil
	case "cn":
		return core.CandidateNetworks, nil
	case "spark":
		return core.SparkNetworks, nil
	case "banks":
		return core.DistinctRoot, nil
	case "steiner":
		return core.SteinerTree, nil
	case "slca":
		return core.SLCA, nil
	case "elca":
		return core.ELCA, nil
	}
	return core.Auto, fmt.Errorf("unknown semantics %q", s)
}
