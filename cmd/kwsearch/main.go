// Command kwsearch runs keyword queries over the built-in datasets under a
// selectable result semantics.
//
// Usage:
//
//	kwsearch -data dblp -semantics cn -k 5 keyword search
//	kwsearch -data seltzer -semantics banks Seltzer Berkeley
//	kwsearch -data auctions -semantics slca seller Tom
//	kwsearch -data dblp -workers 4 -trace keyword search
//	kwsearch -data dblp -deadline 50ms keyword search
//	kwsearch -data dblp -json keyword search | jq .stats
//	kwsearch -data dblp -serve localhost:6060 keyword search
//	kwsearch -data dblp -n 16 -admit 1 keyword search
//	kwsearch -data dblp -shards 4 -stats keyword search
//
// -n runs the query that many times concurrently against the shared
// engine; combined with -admit it demonstrates load shedding from the
// command line (the summary goes to stderr).
//
// Exit codes: 0 success (including partial results on deadline), 2 usage
// error, 3 bad query, 4 shed by admission control, 5 deadline expired
// before any evaluation could run, 1 any other failure. With -n > 1 the
// exit code is the most severe outcome across runs.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"kwsearch/internal/core"
	"kwsearch/internal/dataset"
	"kwsearch/internal/obs"
	"kwsearch/internal/shard"
	"kwsearch/internal/snippet"
)

func main() {
	data := flag.String("data", "dblp", "dataset: dblp | widom | seltzer | products | events | auctions | conf | bib")
	sem := flag.String("semantics", "auto", "auto | cn | spark | banks | steiner | slca | elca")
	k := flag.Int("k", 10, "number of results")
	doClean := flag.Bool("clean", false, "run noisy-channel query cleaning first")
	snip := flag.Bool("snippets", false, "print snippets for XML results")
	workers := flag.Int("workers", 1, "worker-pool size for cn/slca evaluation (>1 enables the parallel executor)")
	shards := flag.Int("shards", 0, "shard the engine N ways and answer through the scatter-gather coordinator (0/1 = single engine; relational datasets only)")
	deadline := flag.Duration("deadline", 0, "per-query time budget (0 = none); an expiring deadline returns the partial answer certified so far")
	admit := flag.Int("admit", 0, "admission-control concurrency limit (0 = off; relevant with -serve under external load)")
	admitQueue := flag.Int("admit-queue", 0, "bounded admission queue depth used with -admit")
	concurrent := flag.Int("n", 1, "run the query this many times concurrently (with -admit this demonstrates load shedding)")
	stats := flag.Bool("stats", false, "print the engine's metrics-registry snapshot after the search")
	trace := flag.Bool("trace", false, "print the query's span tree (pipeline stages with timings and attributes)")
	jsonOut := flag.Bool("json", false, "emit results, stats and trace as one JSON object")
	serve := flag.String("serve", "", "after the query, serve /metrics, /metrics/prom, /debug/vars, /debug/pprof (and /debug/slowlog with -slowlog-cap) on this address and block")
	logLevel := flag.String("log-level", "warn", "structured-log level for engine lines on stderr: debug | info | warn | error | off")
	slowlogMS := flag.Int("slowlog-ms", 100, "slow-query capture threshold in ms (0 disables the duration trigger)")
	slowlogCap := flag.Int("slowlog-cap", 0, "slow-query exemplar ring capacity (0 = tail sampling off); captured exemplars are summarized on stderr")
	flag.Parse()
	query := strings.Join(flag.Args(), " ")
	if query == "" {
		fmt.Fprintln(os.Stderr, "usage: kwsearch [flags] keyword...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	engine, err := buildEngine(*data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The searcher seam: a bare engine, or the scatter-gather coordinator
	// over N shard views of it — every later step is identical.
	var searcher core.Searcher = engine
	if *shards > 1 {
		coord, err := shard.New(engine, shard.Options{Shards: *shards})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		searcher = coord
	}
	semantics, err := core.ParseSemantics(*sem)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *doClean && !*jsonOut && engine.Cleaner != nil {
		fmt.Printf("cleaned query: %s\n", engine.Cleaner.Clean(query))
	}
	if *admit > 0 {
		searcher.Admit(*admit, *admitQueue)
	}
	logger, err := buildLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var slowlog *obs.SlowLog
	if *slowlogCap > 0 {
		slowlog = obs.NewSlowLog(*slowlogCap, time.Duration(*slowlogMS)*time.Millisecond)
		searcher.SetSlowLog(slowlog)
	}
	ctx := obs.WithLogger(context.Background(), logger)
	req := core.Request{
		Query: query, TopK: *k, Semantics: semantics, Clean: *doClean,
		Workers: *workers, Deadline: *deadline,
		Trace: *trace || *jsonOut,
	}
	resp, err := runQueries(ctx, searcher, req, *concurrent)
	printSlowLog(slowlog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		switch {
		case errors.Is(err, core.ErrBadQuery):
			os.Exit(3)
		case errors.Is(err, core.ErrOverloaded):
			os.Exit(4)
		case errors.Is(err, core.ErrDeadlineExceeded):
			os.Exit(5)
		}
		os.Exit(1)
	}

	if *jsonOut {
		emitJSON(query, resp)
	} else {
		printText(searcher.Registry(), resp, *snip, *trace, *stats)
	}

	if *serve != "" {
		srv, err := obs.ServeWith(*serve, searcher.Registry(), slowlog)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics (prom on /metrics/prom, pprof on /debug/pprof/)\n", srv.Addr())
		// Block until interrupted, then drain in-flight scrapes
		// gracefully (bounded) instead of dropping them mid-body.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "metrics server shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}

// runQueries executes req n times concurrently against the shared
// engine (n == 1 is the plain single-query path) and returns the first
// complete response. With an admission gate installed and n beyond its
// capacity, some runs shed — the returned error is the most severe
// failure across runs (bad query, then shed, then queued deadline), so
// the exit code reflects what the burst hit even when one run won.
func runQueries(ctx context.Context, engine core.Searcher, req core.Request, n int) (*core.Response, error) {
	if n <= 1 {
		return engine.Query(ctx, req)
	}
	responses := make([]*core.Response, n)
	errs := make([]error, n)
	startGun := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			//lint:ignore ctxdrop start-gun barrier: closed unconditionally right after the spawn loop, never blocks past it
			<-startGun
			responses[i], errs[i] = engine.Query(ctx, req)
		}(i)
	}
	close(startGun)
	wg.Wait()

	var ok, shed, deadline, other int
	var resp *core.Response
	var worst error
	rank := func(err error) int {
		switch {
		case errors.Is(err, core.ErrBadQuery):
			return 3
		case errors.Is(err, core.ErrOverloaded):
			return 2
		case errors.Is(err, core.ErrDeadlineExceeded):
			return 1
		}
		return 0
	}
	for i := 0; i < n; i++ {
		switch {
		case errs[i] == nil:
			ok++
			if resp == nil {
				resp = responses[i]
			}
		case errors.Is(errs[i], core.ErrOverloaded):
			shed++
		case errors.Is(errs[i], core.ErrDeadlineExceeded):
			deadline++
		default:
			other++
		}
		if errs[i] != nil && (worst == nil || rank(errs[i]) > rank(worst)) {
			worst = errs[i]
		}
	}
	fmt.Fprintf(os.Stderr, "concurrent runs: n=%d ok=%d shed=%d deadline=%d other=%d\n", n, ok, shed, deadline, other)
	if worst != nil {
		return nil, worst
	}
	return resp, nil
}

// buildLogger maps the -log-level flag onto a stderr structured logger;
// "off" disables logging entirely (a nil obs.Logger no-ops).
func buildLogger(level string) (*obs.Logger, error) {
	if level == "off" || level == "none" {
		return nil, nil
	}
	lv, err := obs.ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return obs.NewLogger(os.Stderr, lv), nil
}

// printSlowLog summarizes the tail-sampled exemplars on stderr, one line
// per retained query (newest first). No-op without -slowlog-cap.
func printSlowLog(sl *obs.SlowLog) {
	if sl == nil || sl.Len() == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "slowlog: %d captured (cap %d, threshold %s)\n", sl.Captured(), sl.Cap(), sl.Threshold())
	for _, en := range sl.Entries() {
		fmt.Fprintf(os.Stderr, "slowlog: seq=%d outcome=%s duration=%s keywords_hash=%s plan=%s\n",
			en.Seq, en.Outcome, en.Duration, en.KeywordsHash, en.PlanSignature)
	}
}

// printText is the human-readable output path: ranked results, then the
// optional span tree and metrics snapshot.
func printText(reg *obs.Registry, resp *core.Response, snip, trace, stats bool) {
	if resp.Partial {
		fmt.Println("partial results: the deadline expired before the answer was complete")
	}
	if len(resp.Results) == 0 {
		fmt.Println("no results")
	}
	for i, r := range resp.Results {
		fmt.Printf("%2d. %s\n", i+1, r)
		if snip && r.Node != nil {
			for _, it := range snippet.Generate(r.Node, resp.Stats.Terms, 4) {
				fmt.Printf("      %s: %s\n", it.Label, it.Value)
			}
		}
	}
	if trace && resp.Trace != nil {
		fmt.Printf("\ntrace (%s total):\n%s", resp.Stats.Elapsed, resp.Trace)
	}
	if stats {
		if len(resp.Stats.Shards) > 0 {
			fmt.Printf("\nsharding: %d shards, merge overhead %s\n", len(resp.Stats.Shards), resp.Stats.Merge)
			for _, sh := range resp.Stats.Shards {
				fmt.Printf("shard %d: results=%d pulled=%d partial=%v elapsed=%s\n",
					sh.Shard, sh.Results, sh.Pulled, sh.Partial, sh.Elapsed)
			}
		}
		if st := resp.Stats.Exec; st != nil {
			fmt.Printf("\nexec: workers=%d cns=%d evaluated=%d skipped=%d prefix-reuses=%d result-cache-hit=%v plan-cache-hit=%v\n",
				st.Workers, st.CNs, st.Evaluated, st.Skipped, st.PrefixReuses, st.ResultCacheHit, st.PlanCacheHit)
			if len(st.JobsPerWorker) > 0 {
				fmt.Printf("exec: jobs per worker %v\n", st.JobsPerWorker)
			}
		}
		if reg != nil {
			fmt.Printf("\nmetrics:\n%s", reg.Snapshot())
		}
	}
}

// jsonResult is one ranked answer in the -json payload.
type jsonResult struct {
	Rank  int     `json:"rank"`
	Score float64 `json:"score"`
	Text  string  `json:"text"`
}

// jsonOutput is the -json payload: the query, ranked results, the
// engine-level stats (terms, timings, executor and cache counters), and
// the span tree when tracing ran.
type jsonOutput struct {
	Query   string       `json:"query"`
	Results []jsonResult `json:"results"`
	Stats   core.Stats   `json:"stats"`
	Trace   *core.Trace  `json:"trace,omitempty"`
}

func emitJSON(query string, resp *core.Response) {
	out := jsonOutput{Query: query, Stats: resp.Stats, Trace: resp.Trace}
	for i, r := range resp.Results {
		out.Results = append(out.Results, jsonResult{Rank: i + 1, Score: r.Score, Text: r.String()})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func buildEngine(data string) (*core.Engine, error) {
	switch data {
	case "dblp":
		return core.NewRelational(dataset.DBLP(dataset.DefaultDBLPConfig())), nil
	case "widom":
		return core.NewRelational(dataset.WidomBib()), nil
	case "seltzer":
		return core.NewRelational(dataset.SeltzerBerkeley()), nil
	case "products":
		return core.NewRelational(dataset.Products()), nil
	case "events":
		return core.NewRelational(dataset.EventsDB()), nil
	case "auctions":
		return core.NewXML(dataset.AuctionsXML()), nil
	case "conf":
		return core.NewXML(dataset.ConfDemoXML()), nil
	case "bib":
		return core.NewXML(dataset.BibXML(dataset.DefaultBibConfig())), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", data)
}
