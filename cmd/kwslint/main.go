// Command kwslint runs the module's static-analysis rules (see
// internal/analysis/rules) over package patterns and exits non-zero when
// it finds violations.
//
// Usage:
//
//	kwslint [-rules] [packages...]
//
// Each package argument is a directory or a dir/... pattern; the default
// is ./... from the current directory. Diagnostics print one per line as
// path:line:col: message (rule). A finding is suppressed by a
// `//lint:ignore rule reason` comment on the same line or the line
// directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"kwsearch/internal/analysis"
	"kwsearch/internal/analysis/rules"
)

func main() {
	listRules := flag.Bool("rules", false, "list the rules and exit")
	flag.Parse()

	ruleSet := rules.Default()
	if *listRules {
		for _, r := range ruleSet {
			fmt.Printf("%-30s %s\n", r.Name(), r.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	ld, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "kwslint:", err)
		os.Exit(2)
	}
	dirs, err := ld.MatchDirs(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kwslint:", err)
		os.Exit(2)
	}
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "kwslint: no packages match", patterns)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	failed := false
	for _, dir := range dirs {
		pkg, err := ld.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kwslint: %s: %v\n", dir, err)
			failed = true
			continue
		}
		for _, d := range analysis.Run(pkg, ruleSet) {
			// Print paths relative to the working directory so the output
			// is stable and clickable regardless of checkout location.
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && len(rel) < len(d.Pos.Filename) {
				d.Pos.Filename = rel
			}
			fmt.Println(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
