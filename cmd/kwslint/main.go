// Command kwslint runs the module's static-analysis rules (see
// internal/analysis/rules) over package patterns and exits non-zero when
// it finds violations.
//
// Usage:
//
//	kwslint [-rules] [-json] [-fix] [-j N] [packages...]
//
// Each package argument is a directory or a dir/... pattern; the default
// is ./... from the current directory. Packages are analyzed in parallel
// (-j caps the workers, default GOMAXPROCS). Diagnostics print one per
// line as path:line:col: message (rule). A finding is suppressed by a
// `//lint:ignore rule reason` comment on the same line or the line
// directly above it.
//
// -json writes a machine-readable report to stdout (human diagnostics
// move to stderr so both audiences can consume one run). -fix applies
// every suggested fix in place, then re-analyzes so the exit status and
// report reflect the repaired tree; a second -fix run is a no-op.
//
// Exit status: 0 clean, 1 diagnostics remain, 2 usage or load failure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"kwsearch/internal/analysis"
	"kwsearch/internal/analysis/rules"
)

// jsonReport is the -json output document. The schema is versioned so
// downstream tooling (CI annotators, the benchrunner) can detect drift.
type jsonReport struct {
	Version     int              `json:"version"`
	Packages    int              `json:"packages"`
	DurationMS  int64            `json:"duration_ms"`
	Fixed       int              `json:"fixed_edits,omitempty"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Fixable bool   `json:"fixable"`
}

func main() {
	listRules := flag.Bool("rules", false, "list the rules and exit")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report on stdout")
	applyFix := flag.Bool("fix", false, "apply suggested fixes in place, then re-analyze")
	workers := flag.Int("j", 0, "max packages analyzed in parallel (0 = GOMAXPROCS)")
	flag.Parse()

	ruleSet := rules.Default()
	if *listRules {
		for _, r := range ruleSet {
			fmt.Printf("%-30s %s\n", r.Name(), r.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	ld, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "kwslint:", err)
		os.Exit(2)
	}
	dirs, err := ld.MatchDirs(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kwslint:", err)
		os.Exit(2)
	}
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "kwslint: no packages match", patterns)
		os.Exit(2)
	}

	ctx := context.Background()
	start := time.Now()
	results := analysis.AnalyzeDirs(ctx, ".", dirs, ruleSet, *workers)

	fixedEdits := 0
	if *applyFix {
		var all []analysis.Diagnostic
		for _, res := range results {
			all = append(all, res.Diags...)
		}
		fixes, err := analysis.ApplyFixes(all)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kwslint: fix:", err)
			os.Exit(2)
		}
		if err := analysis.WriteFixes(fixes); err != nil {
			fmt.Fprintln(os.Stderr, "kwslint: fix:", err)
			os.Exit(2)
		}
		for _, fr := range fixes {
			fixedEdits += fr.Edits
		}
		// Report against the repaired tree: fixed findings disappear,
		// anything a fix could not address (or newly exposed) remains.
		results = analysis.AnalyzeDirs(ctx, ".", dirs, ruleSet, *workers)
	}

	cwd, _ := os.Getwd()
	humanOut := os.Stdout
	if *jsonOut {
		humanOut = os.Stderr
	}

	loadFailed := false
	report := jsonReport{Version: 1, Packages: len(dirs), Diagnostics: []jsonDiagnostic{}}
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "kwslint: %s: %v\n", res.Dir, res.Err)
			loadFailed = true
			continue
		}
		for _, d := range res.Diags {
			// Print paths relative to the working directory so the output
			// is stable and clickable regardless of checkout location.
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && len(rel) < len(d.Pos.Filename) {
				d.Pos.Filename = rel
			}
			fmt.Fprintln(humanOut, d)
			report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Rule:    d.Rule,
				Message: d.Message,
				Fixable: d.Fix != nil,
			})
		}
	}
	report.DurationMS = time.Since(start).Milliseconds()
	report.Fixed = fixedEdits

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "kwslint:", err)
			os.Exit(2)
		}
	}
	if *applyFix && fixedEdits > 0 {
		fmt.Fprintf(humanOut, "kwslint: applied %d fix edit(s)\n", fixedEdits)
	}

	switch {
	case loadFailed:
		os.Exit(2)
	case len(report.Diagnostics) > 0:
		os.Exit(1)
	}
}
