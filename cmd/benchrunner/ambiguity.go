package main

import (
	"fmt"

	"kwsearch/internal/clean"
	"kwsearch/internal/complete"
	"kwsearch/internal/datagraph"
	"kwsearch/internal/dataset"
	"kwsearch/internal/facet"
	"kwsearch/internal/forms"
	"kwsearch/internal/invindex"
	"kwsearch/internal/refine"
	"kwsearch/internal/relstore"
	"kwsearch/internal/rewrite"
	"kwsearch/internal/schemagraph"
)

func init() {
	register("E7", "slides 67-68 — query cleaning {Appl ipd nan}{att} → {apple ipad nano}{at&t}", runE7)
	register("E8", "slides 72-73 — TASTIER prefix candidates filtered by δ-step index", runE8)
	register("E9", "slides 97-99 — Keyword++: ibm→Brand=Lenovo, netbook→ORDER BY screen ASC", runE9)
	register("E21", "slides 84-91 — faceted navigation: greedy cost vs fixed order", runE21)
	register("E22", "slides 80-82 — cluster-based expansion F vs ambiguous baseline", runE22)
	register("E24", "slides 59-63 — form generation: queriability-ranked coverage of a query log", runE24)
}

func runE7() error {
	ix := invindex.New()
	docs := []string{
		"apple ipad nano tablet", "apple ipad nano silver", "apple ipad pro",
		"apple ipod nano music", "at&t wireless plan", "at&t family plan",
		"samsung galaxy tablet",
	}
	for i, d := range docs {
		ix.Add(invindex.DocID(i), d)
	}
	c := clean.NewCleaner(ix)
	got := c.Clean("Appl ipd nan att")
	fmt.Printf("   'Appl ipd nan att' → %s (score %.2g)\n", got, got.Score)
	return expect(got.String() == "{apple ipad nano} {at&t}",
		"cleaned = %s, want {apple ipad nano} {at&t}", got)
}

func runE8() error {
	db := relstore.NewDB()
	db.MustCreateTable(&relstore.TableSchema{
		Name: "node",
		Columns: []relstore.Column{
			{Name: "id", Type: relstore.KindInt},
			{Name: "txt", Type: relstore.KindString, Text: true},
		},
		Key: "id",
	})
	rows := []string{
		"srivastava streams", "sigmod 2007", "srivastava joins",
		"icde 2009", "srivastava mining sigact", "unrelated content",
	}
	for i, txt := range rows {
		db.MustInsert("node", map[string]relstore.Value{
			"id": relstore.Int(int64(i)), "txt": relstore.String(txt),
		})
	}
	g := datagraph.New(len(rows))
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(4, 5, 1)
	cp := complete.New(db, g, 1)
	cands := cp.CandidateCount([]string{"srivasta", "sig"})
	preds := cp.Search([]string{"srivasta", "sig"}, 0)
	fmt.Printf("   candidates before filtering: %d; after δ-step filtering: %d\n", cands, len(preds))
	for _, p := range preds {
		fmt.Printf("   node %d completes to %v\n", p.Doc, p.Completions)
	}
	return firstErr(
		expect(cands == 3, "candidates = %d, want 3 (slide's {11,12,78})", cands),
		expect(len(preds) == 2, "survivors = %d, want 2", len(preds)),
	)
}

func runE9() error {
	ip := rewrite.NewInterpreter(dataset.Products(), "product",
		[]string{"brand"}, []string{"screen"})
	cat, _ := ip.DQP("ibm", []string{"laptop"})
	_, num := ip.DQP("netbook", []string{"laptop"})
	if cat == nil || num == nil {
		return fmt.Errorf("mappings not learned: cat=%v num=%v", cat, num)
	}
	dir := "DESC"
	if num.Ascending {
		dir = "ASC"
	}
	fmt.Printf("   ibm → %s=%s (KL contribution %.3f)\n", cat.Attr, cat.Value, cat.Divergence)
	fmt.Printf("   netbook → ORDER BY %s %s (EMD %.3f)\n", num.Attr, dir, num.EMD)
	return firstErr(
		expect(cat.Value.Str == "Lenovo", "ibm mapped to %v", cat.Value),
		expect(num.Ascending, "netbook should order ascending"),
	)
}

func runE21() error {
	db := dataset.EventsDB()
	tbl := db.Table("event")
	log := []facet.LogQuery{
		{Conds: []facet.Condition{{Attr: "state", Value: relstore.String("TX")}}, Count: 6},
		{Conds: []facet.Condition{{Attr: "state", Value: relstore.String("MI")}}, Count: 5},
		{Conds: []facet.Condition{{Attr: "month", Value: relstore.String("Dec")}}, Count: 2},
	}
	greedy := facet.Build(tbl, tbl.Tuples(), []string{"month", "state"}, nil, log, facet.Options{})
	fixed := facet.BuildFixedOrder(tbl, tbl.Tuples(), []string{"month", "state"}, nil, log, facet.Options{})
	fmt.Printf("   greedy tree: root facet %q, expected cost %.3f\n", greedy.Root.Attr, greedy.Cost)
	fmt.Printf("   fixed order: root facet %q, expected cost %.3f\n", fixed.Root.Attr, fixed.Cost)
	return expect(greedy.Cost <= fixed.Cost+1e-9,
		"greedy cost %v exceeds fixed %v", greedy.Cost, fixed.Cost)
}

func runE22() error {
	ix := invindex.New()
	docs := []string{
		"java language object oriented software platform sun",
		"java applet language developed sun",
		"java software platform virtual machine",
		"java island indonesia provinces",
		"java island volcano indonesia",
		"java band formed paris active 1972",
		"java band albums paris",
	}
	for i, d := range docs {
		ix.Add(invindex.DocID(i), d)
	}
	clusters := [][]invindex.DocID{{0, 1, 2}, {3, 4}, {5, 6}}
	exps := refine.ExpandAllClusters(ix, []string{"java"}, clusters, 2)
	base := refine.BaselineF(ix, []string{"java"}, clusters)
	for i, e := range exps {
		fmt.Printf("   cluster %d: %v  F=%.3f (baseline %.3f)\n", i, e.Terms, e.F, base[i])
	}
	avgBase := 0.0
	for _, b := range base {
		avgBase += b
	}
	avgBase /= float64(len(base))
	fmt.Printf("   avg F: expanded %.3f vs baseline %.3f\n", refine.AvgF(exps), avgBase)
	return expect(refine.AvgF(exps) > avgBase, "expansion did not improve F")
}

func runE24() error {
	db := dataset.DBLP(dataset.DBLPConfig{
		Authors: 80, Papers: 200, Conferences: 6, AuthorsPerPaper: 2,
		CitesPerPaper: 1, TitleTermCount: 3, ExtraVocab: 40, Seed: 5,
	})
	g := schemagraph.FromDB(db)
	fs := forms.Generate(db, g, forms.GenerateOptions{MaxTables: 3})
	sel := forms.NewSelector(db, fs)
	var log [][]string
	for _, e := range dataset.QueryLog(db, 60, 7) {
		log = append(log, e.Terms)
	}
	covAll := forms.LogCoverage(sel, fs, log)
	half := fs[:len(fs)/2] // top half by queriability
	covHalf := forms.LogCoverage(sel, half, log)
	fmt.Printf("   forms: %d skeletons; coverage all=%.2f top-half=%.2f\n",
		len(fs), covAll, covHalf)
	return firstErr(
		expect(covAll >= 0.9, "full coverage = %v, want >= 0.9", covAll),
		expect(covHalf <= covAll, "restricted coverage exceeds full"),
	)
}
