package main

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	"kwsearch/internal/core"
	"kwsearch/internal/dataset"
	"kwsearch/internal/exec"
	"kwsearch/internal/resilience"
)

func init() {
	register("E35", "robustness layer — deadline partials are certified prefixes, admission control sheds, cancellation is prompt", runE35)
}

// renderResults serializes CN answers bit-exactly (canonical CN, tuple
// IDs, raw score bits) so the partial-vs-full comparison is a byte-level
// prefix check, the same certificate the engine promises.
func renderResults(rs []core.Result) string {
	var b strings.Builder
	for _, r := range rs {
		if r.CN != nil {
			b.WriteString(r.CN.Canonical())
		}
		for _, tp := range r.Tuples {
			b.WriteByte(' ')
			b.WriteString(strconv.Itoa(int(tp.ID)))
		}
		b.WriteByte('@')
		b.WriteString(strconv.FormatUint(math.Float64bits(r.Score), 16))
		b.WriteByte('\n')
	}
	return b.String()
}

// parkFirstQuery starts a query that blocks inside an injected 10s
// evaluation delay and returns once a worker is provably parked there,
// along with the cancel that releases it and the channel it finishes on.
// The query must not be result-cached on e, or evaluation never runs.
func parkFirstQuery(e *core.Engine) (context.CancelFunc, <-chan error, error) {
	in := resilience.NewInjector(1).Arm(resilience.StageEval, resilience.Fault{Delay: 10 * time.Second})
	ctx, cancel := context.WithCancel(resilience.WithInjector(context.Background(), in))
	done := make(chan error, 1)
	go func() {
		_, err := e.Query(ctx, core.Request{Query: "keyword database", TopK: 10000, Workers: 2})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for in.Hits(resilience.StageEval) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if in.Hits(resilience.StageEval) == 0 {
		cancel()
		return nil, nil, fmt.Errorf("query never reached the evaluation stage")
	}
	return cancel, done, nil
}

func runE35() error {
	db := dataset.DBLP(dataset.DefaultDBLPConfig())
	e := core.NewRelational(db)
	req := core.Request{Query: "keyword search", TopK: 10000, Workers: 2}

	// (1) Deadline partial: a deadline expiring mid-evaluation (forced by
	// an injected per-job delay) yields Partial with a byte-exact prefix
	// of the undeadlined answer. Partial run first so the full run cannot
	// seed the result cache.
	in := resilience.NewInjector(1).Arm(resilience.StageEval, resilience.Fault{Delay: 2 * time.Second, After: 2})
	preq := req
	preq.Deadline = 250 * time.Millisecond
	partial, err := e.Query(resilience.WithInjector(context.Background(), in), preq)
	if err != nil {
		return fmt.Errorf("deadlined query errored: %w", err)
	}
	full, err := e.Query(context.Background(), req)
	if err != nil {
		return err
	}
	fullS, partS := renderResults(full.Results), renderResults(partial.Results)

	// (2) Admission: with Admit(1, 0) and the only slot parked on an
	// injected delay, concurrent queries shed with the typed ErrOverloaded
	// — and the shed decision itself is fast (measured p99 below).
	e.Admit(1, 0)
	cancel, done, err := parkFirstQuery(e)
	if err != nil {
		return err
	}
	const shedN = 50
	lat := make([]time.Duration, 0, shedN)
	var shedErr error
	for i := 0; i < shedN; i++ {
		start := time.Now()
		_, qerr := e.Query(context.Background(), core.Request{Query: "keyword search"})
		lat = append(lat, time.Since(start))
		if !errors.Is(qerr, core.ErrOverloaded) && shedErr == nil {
			shedErr = fmt.Errorf("shed query %d err = %w, want ErrOverloaded", i, qerr)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	shedP99 := lat[len(lat)*99/100]

	// (3) Cancellation: releasing the parked query returns promptly with
	// context.Canceled. The 1s bound is generous next to the tested 50ms
	// promise; it guards the invariant without timing flake.
	cancelled := time.Now()
	cancel()
	var cancelErr error
	var cancelTook time.Duration
	select {
	case cancelErr = <-done:
		cancelTook = time.Since(cancelled)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("parked query ignored cancellation")
	}
	e.Admit(0, 0)

	fmt.Printf("   partial %d of %d results (certified prefix), shed p99 %v over %d queries, cancel returned in %v\n",
		len(partial.Results), len(full.Results), shedP99, shedN, cancelTook)
	return firstErr(
		expect(partial.Partial, "deadlined query did not report Partial"),
		expect(strings.HasPrefix(fullS, partS), "partial answer is not a prefix of the full answer"),
		expect(!full.Partial, "undeadlined query claims Partial"),
		shedErr,
		expect(errors.Is(cancelErr, context.Canceled), "cancelled query err = %v, want Canceled", cancelErr),
		expect(cancelTook < time.Second, "cancellation took %v, want < 1s", cancelTook),
	)
}

// resilienceJSON is the robustness block of BENCH_exec.json: the cost of
// carrying a live deadline through the executor (the ctx checks at
// iteration boundaries) and the latency of a shed decision under an
// admission gate with no queue.
type resilienceJSON struct {
	CtxBackgroundNS int64   `json:"ctx_background_ns"`
	CtxDeadlineNS   int64   `json:"ctx_deadline_ns"`
	CtxOverheadPct  float64 `json:"ctx_overhead_pct"`
	ShedQueries     int     `json:"shed_queries"`
	ShedP99US       int64   `json:"shed_p99_us"`
}

// medianOf sorts a sample and returns its middle element — the robust
// center the interleaved overhead probe summarizes with.
func medianOf(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// measureResilience produces the resilience block: interleaved repeated
// pool executions under context.Background vs a far-away deadline (the
// deadline arms every ctx check on the hot path), and the measured p99
// of shedding against a saturated Admit(1, 0) gate.
//
// The two arms alternate within one loop, every round takes the min of
// a few back-to-back repetitions per arm (with the leading arm
// alternating), and the overhead is the median of the per-round
// deadline/background ratios: the earlier best-of-5-per-arm design ran
// one arm to completion before the other, so allocator and GC drift
// between the arms masqueraded as ctx overhead (readings swung past the
// 3% budget of E35 with the sign flipping between runs). Pairing pins
// each comparison to one thermal state, the garbage collector is parked
// during the probe (one explicit collection between rounds) so a pause
// cannot land inside a 4ms timed region, the per-round min discards
// scheduler pauses a single timing would absorb, and the median
// discards what noise remains. Measured this way the true overhead sits
// well inside the budget, so the executor's check strides stay as they
// are. Both arms run in the warm-plan steady state — the probe prices
// the evaluation path's ctx checks, not enumeration.
func measureResilience() (resilienceJSON, error) {
	x := newExecExecutor()
	q := exec.Query{Terms: []string{"keyword", "search"}, K: 10, MaxCNSize: 5, Workers: 4}
	// One warm-up execution so the first timed round does not also pay
	// plan compilation and allocator warm-up.
	if _, _, err := x.TopK(context.Background(), q); err != nil {
		return resilienceJSON{}, err
	}
	runArm := func(ctx context.Context) time.Duration {
		x.InvalidateDataCaches()
		start := time.Now()
		if _, _, err := x.TopK(ctx, q); err != nil {
			panic(err)
		}
		return time.Since(start)
	}
	dlCtx, cancelDL := context.WithTimeout(context.Background(), time.Hour)
	defer cancelDL()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const rounds = 11
	const reps = 5 // per-arm repetitions within a round; min discards pauses
	baseS := make([]time.Duration, 0, rounds)
	dlS := make([]time.Duration, 0, rounds)
	ratios := make([]float64, 0, rounds)
	for i := 0; i < rounds; i++ {
		runtime.GC() // collect outside the timed region, not inside it
		b, d := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
		for r := 0; r < reps; r++ {
			// Alternate which arm leads so slow drift within a round
			// cancels instead of consistently taxing the second arm.
			if (i+r)%2 == 0 {
				b, d = min(b, runArm(context.Background())), min(d, runArm(dlCtx))
			} else {
				d, b = min(d, runArm(dlCtx)), min(b, runArm(context.Background()))
			}
		}
		baseS = append(baseS, b)
		dlS = append(dlS, d)
		ratios = append(ratios, float64(d)/float64(b))
	}
	base, withDeadline := medianOf(baseS), medianOf(dlS)
	sort.Float64s(ratios)
	overheadPct := 100 * (ratios[len(ratios)/2] - 1)

	db := dataset.DBLP(dataset.DefaultDBLPConfig())
	e := core.NewRelational(db)
	e.Admit(1, 0)
	cancel, done, err := parkFirstQuery(e)
	if err != nil {
		return resilienceJSON{}, err
	}
	const shedN = 50
	lat := make([]time.Duration, 0, shedN)
	for i := 0; i < shedN; i++ {
		start := time.Now()
		if _, qerr := e.Query(context.Background(), core.Request{Query: "keyword search"}); !errors.Is(qerr, core.ErrOverloaded) {
			cancel()
			return resilienceJSON{}, fmt.Errorf("shed query err = %w, want ErrOverloaded", qerr)
		}
		lat = append(lat, time.Since(start))
	}
	cancel()
	<-done
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })

	return resilienceJSON{
		CtxBackgroundNS: base.Nanoseconds(),
		CtxDeadlineNS:   withDeadline.Nanoseconds(),
		CtxOverheadPct:  overheadPct,
		ShedQueries:     shedN,
		ShedP99US:       lat[len(lat)*99/100].Microseconds(),
	}, nil
}
