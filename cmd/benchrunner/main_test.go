package main

import "testing"

// TestAllExperimentsReproduce runs every registered experiment (the same
// set `go run ./cmd/benchrunner` prints), so the paper-vs-measured claims
// of EXPERIMENTS.md are enforced by `go test`.
func TestAllExperimentsReproduce(t *testing.T) {
	if len(experiments) < 25 {
		t.Fatalf("only %d experiments registered", len(experiments))
	}
	for _, e := range experiments {
		e := e
		t.Run(e.id, func(t *testing.T) {
			if err := e.run(); err != nil {
				t.Fatalf("%s (%s): %v", e.id, e.title, err)
			}
		})
	}
}

func TestExpNum(t *testing.T) {
	if expNum("E5") != 5 || expNum("E26") != 26 {
		t.Fatalf("expNum broken")
	}
}
