// Command benchrunner regenerates every experiment in DESIGN.md's index
// (E1-E26): the tutorial's worked examples with their expected values, and
// summary statistics for the performance-shape experiments (whose timing
// curves come from `go test -bench`). Output is the data behind
// EXPERIMENTS.md.
//
// Usage:
//
//	benchrunner                # run all experiments
//	benchrunner E5 E10         # run selected experiments
//	benchrunner -performance   # measure executor efficiency, write BENCH_exec.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// experiment is one runnable reproduction; it prints its table and returns
// an error when a paper-expected value does not reproduce.
type experiment struct {
	id    string
	title string
	run   func() error
}

var experiments []experiment

func register(id, title string, run func() error) {
	experiments = append(experiments, experiment{id: id, title: title, run: run})
}

func main() {
	performance := flag.Bool("performance", false,
		"run the executor-efficiency workload (cache hit/miss/eviction, per-worker jobs) and write BENCH_exec.json")
	obsGate := flag.Bool("obs-overhead", false,
		"measure the observability suite's overhead vs obs-off and exit 1 when it exceeds the 5% budget (the verify.sh gate)")
	bindGate := flag.Bool("bind-gate", false,
		"measure the bind stage's share of a warm steady-state query and exit 1 when it exceeds the 35% budget (the verify.sh gate)")
	shardGate := flag.Bool("shard-gate", false,
		"run the exec workload through the shard coordinator at 1/2/4/8 shards and exit 1 unless every answer is byte-identical to the single engine (the verify.sh gate)")
	flag.Parse()
	if *shardGate {
		doc, err := measureSharding()
		if err != nil {
			fmt.Fprintf(os.Stderr, "shard-gate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("shard-gate: %d queries byte-identical across %d shard arms\n", doc.Queries, len(doc.Arms))
		printSharding(doc)
		if flag.NArg() == 0 && !*performance && !*obsGate && !*bindGate {
			return
		}
	}
	if *bindGate {
		share, err := warmBindShare()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bind-gate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("bind-gate: warm bind share %.1f%% (budget %.0f%%)\n", share, bindWarmShareBudgetPct)
		if share > bindWarmShareBudgetPct {
			fmt.Fprintf(os.Stderr, "bind-gate: %.1f%% exceeds the %.0f%% budget\n", share, bindWarmShareBudgetPct)
			os.Exit(1)
		}
		if flag.NArg() == 0 && !*performance && !*obsGate {
			return
		}
	}
	if *obsGate {
		o, err := measureObservability()
		if err != nil {
			fmt.Fprintf(os.Stderr, "obs-overhead: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("obs-overhead: %.2f%% (budget %.0f%%), baseline %s vs full %s, %d rounds\n",
			o.OverheadPct, obsOverheadBudgetPct,
			time.Duration(o.BaselineNS), time.Duration(o.FullNS), o.Rounds)
		if o.OverheadPct > obsOverheadBudgetPct {
			fmt.Fprintf(os.Stderr, "obs-overhead: %.2f%% exceeds the %.0f%% budget\n", o.OverheadPct, obsOverheadBudgetPct)
			os.Exit(1)
		}
		if flag.NArg() == 0 && !*performance {
			return
		}
	}
	if *performance {
		if err := writeExecPerformance("BENCH_exec.json"); err != nil {
			fmt.Fprintf(os.Stderr, "performance: %v\n", err)
			os.Exit(1)
		}
		if flag.NArg() == 0 {
			return
		}
	}
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	sort.SliceStable(experiments, func(i, j int) bool {
		return expNum(experiments[i].id) < expNum(experiments[j].id)
	})
	failed := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("── %s: %s\n", e.id, e.title)
		if err := e.run(); err != nil {
			failed++
			fmt.Printf("   FAIL: %v\n", err)
		} else {
			fmt.Printf("   ok\n")
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Printf("%d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

func expNum(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}

func expect(cond bool, format string, args ...interface{}) error {
	if cond {
		return nil
	}
	return fmt.Errorf(format, args...)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
