package main

// E39 and the bind block of BENCH_exec.json: the index-driven binder's
// before/after against full-scan binding, and the -bind-gate budget
// check verify.sh runs (warm bind share of a steady-state query must
// stay under bindWarmShareBudgetPct).

import (
	"context"
	"fmt"
	"math"
	"time"

	"kwsearch/internal/cn"
	"kwsearch/internal/dataset"
	"kwsearch/internal/exec"
	"kwsearch/internal/invindex"
)

// bindWarmShareBudgetPct is the verify.sh budget: the bind stage's share
// of a warm steady-state query. Before the binder it was ~78% (every
// query re-scanned every table); the budget keeps it from creeping back.
const bindWarmShareBudgetPct = 35.0

func init() {
	register("E39", "Index-driven generation-aware binder: posting-list binding vs per-query full scan", runE39)
}

// bindJSON is the bind block of BENCH_exec.json.
type bindJSON struct {
	// ScanNS is the legacy cost: one full-scan binding of the first
	// workload query (every table scanned, every tuple scored).
	ScanNS int64 `json:"scan_ns"`
	// ColdNS / WarmNS are the binder's cost for the same query with the
	// term cache cold (posting lists walked, slices built) and warm
	// (cached per-(term, generation) slices merged).
	ColdNS int64 `json:"cold_ns"`
	WarmNS int64 `json:"warm_ns"`
	// WarmSharePct is the bind span's share of the warm steady-state
	// traced query (the stages_warm breakdown) — the -bind-gate metric.
	WarmSharePct float64 `json:"warm_share_pct"`
	Hits         uint64  `json:"hits"`
	Misses       uint64  `json:"misses"`
	HitRate      float64 `json:"hit_rate"`
	Builds       uint64  `json:"builds"`
}

// measureBindCosts times the three bind paths for the first workload
// query on the DBLP dataset: legacy full scan, cold binder, warm
// binder. Hits are sub-millisecond, so each arm is averaged over a
// batch inside bestOf.
func measureBindCosts() (scan, cold, warm time.Duration) {
	db := dataset.DBLP(dataset.DefaultDBLPConfig())
	ix := invindex.FromDB(db)
	terms := execQueries[0]
	binder := cn.NewBinder(db, ix, cn.BinderOptions{})
	const batch = 10
	scan = bestOf(3, func() {
		for i := 0; i < batch; i++ {
			cn.NewScanBinding(db, ix, terms)
		}
	}) / batch
	cold = bestOf(3, func() {
		for i := 0; i < batch; i++ {
			binder.Invalidate()
			binder.Bind(terms)
		}
	}) / batch
	binder.Bind(terms)
	warm = bestOf(3, func() {
		for i := 0; i < batch; i++ {
			binder.Bind(terms)
		}
	}) / batch
	return scan, cold, warm
}

// warmBindShare runs one traced query in the production warm steady
// state (results invalidated, binder and plans kept) and returns the
// bind span's share of the query's wall time.
func warmBindShare() (float64, error) {
	x := newExecExecutor()
	if _, _, err := x.TopK(context.Background(), exec.Query{
		Terms: execQueries[0], K: 10, MaxCNSize: 5, Workers: 4,
	}); err != nil {
		return 0, err
	}
	x.InvalidateResults()
	root, err := traceOnce(x)
	if err != nil {
		return 0, err
	}
	for _, st := range stagesFromTrace(root) {
		if st.Name == "bind" {
			return st.Percent, nil
		}
	}
	return 0, fmt.Errorf("warm trace has no bind stage")
}

func runE39() error {
	terms := execQueries[0]

	scanNS, coldNS, warmNS := measureBindCosts()

	// Byte identity: the binder-backed evaluator and the full-scan
	// evaluator must produce identical top-k answers, scores compared on
	// raw float64 bits.
	x := newExecExecutor()
	q := exec.Query{Terms: terms, K: 10, MaxCNSize: 5}
	serial := x.TopKSerial(q) // scan-bound oracle
	binding := x.Binder().Bind(terms)
	pooled, st, err := x.TopK(context.Background(), exec.Query{Terms: terms, K: 10, MaxCNSize: 5, Workers: 4})
	if err != nil {
		return err
	}
	warm := x.Binder().Bind(terms)
	bits := func(rs []cn.Result) []uint64 {
		out := make([]uint64, len(rs))
		for i, r := range rs {
			out[i] = math.Float64bits(r.Score)
		}
		return out
	}
	sb, pb := bits(serial), bits(pooled)
	sameBits := len(sb) == len(pb)
	for i := 0; sameBits && i < len(sb); i++ {
		sameBits = sb[i] == pb[i]
	}

	fmt.Printf("   bind: scan %-10v cold %-10v warm %-10v (%.0fx over scan)\n",
		scanNS, coldNS, warmNS, float64(scanNS)/float64(warmNS))
	fmt.Printf("   binder cache: %d hits %d misses, %d term builds\n",
		x.BinderStats().Hits, x.BinderStats().Misses, x.Binder().Builds())
	return firstErr(
		expect(warmNS < scanNS, "warm bind (%v) not faster than full scan (%v)", warmNS, scanNS),
		expect(warm.TermsBuilt() == 0 && warm.TermsCached() == len(terms),
			"warm bind rebuilt %d terms (cached %d), want all %d cached",
			warm.TermsBuilt(), warm.TermsCached(), len(terms)),
		expect(len(binding.KeywordTables()) > 0, "binder found no keyword tables"),
		expect(sameBits, "binder top-k scores %x diverge from scan oracle %x", pb, sb),
		expect(st.CNs > 0, "pooled run evaluated no CNs"),
	)
}
