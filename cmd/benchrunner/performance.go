package main

import (
	"fmt"
	"time"

	"kwsearch/internal/banks"
	"kwsearch/internal/blinks"
	"kwsearch/internal/cn"
	"kwsearch/internal/datagraph"
	"kwsearch/internal/dataset"
	"kwsearch/internal/invindex"
	"kwsearch/internal/lca"
	"kwsearch/internal/parallel"
	"kwsearch/internal/schemagraph"
	"kwsearch/internal/spark"
	"kwsearch/internal/xmltree"
)

func init() {
	register("E15", "slide 140 — ELCA: IndexStack-style vs one-pass DIL-style scan", runE15)
	register("E16", "slides 113-114, 123 — BANKS I vs BANKS II vs BLINKS work", runE16)
	register("E17", "slide 116 — DISCOVER top-k: Naive vs Sparse vs Global Pipeline", runE17)
	register("E18", "slide 117 — SPARK: naive vs skyline-sweep vs block-pipeline probes", runE18)
	register("E19", "slides 129-133 — parallel CN computing: naive vs sharing-aware makespan", runE19)
	register("E20", "slides 112, 138 — SLCA: indexed-lookup-eager vs scan-eager crossover", runE20)
	register("E23", "slides 121-122 — hub proximity index: space and query time vs Dijkstra", runE23)
}

// timeIt reports the average duration of f over n runs.
func timeIt(n int, f func()) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		f()
	}
	return time.Since(start) / time.Duration(n)
}

func runE15() error {
	for _, smin := range []int{5, 50, 500} {
		tr := dataset.KeywordTree(4, 5, map[string]int{"k0": smin, "k1": 2000}, 1)
		ix := xmltree.NewIndex(tr)
		terms := []string{"k0", "k1"}
		a := lca.ELCA(ix, terms)
		b := lca.ELCAStack(ix, terms)
		tIndexed := timeIt(5, func() { lca.ELCA(ix, terms) })
		tScan := timeIt(5, func() { lca.ELCAStack(ix, terms) })
		fmt.Printf("   |Smin|=%-4d |Smax|=2000: indexed %-10v scan %-10v (results %d=%d)\n",
			smin, tIndexed, tScan, len(a), len(b))
		if len(a) != len(b) {
			return fmt.Errorf("ELCA variants disagree at smin=%d", smin)
		}
	}
	return nil
}

func runE16() error {
	db := dataset.DBLP(dataset.DefaultDBLPConfig())
	ix := invindex.FromDB(db)
	g := datagraph.FromDB(db, nil)
	// Author names vs title terms: no single tuple matches both, so the
	// search must genuinely expand (the assembly case of slide 7).
	terms := []string{"wang", "search"}
	groups := make([][]datagraph.NodeID, len(terms))
	kw := map[string][]datagraph.NodeID{}
	for i, t := range terms {
		for _, d := range ix.Docs(t) {
			groups[i] = append(groups[i], datagraph.NodeID(d))
		}
		kw[t] = groups[i]
	}
	const k = 10
	a1, s1 := banks.BackwardSearch(g, groups, banks.Options{K: k})
	a2, s2 := banks.BidirectionalSearch(g, groups, banks.Options{K: k, MaxExpansions: s1.Expansions})
	bix := blinks.NewIndex(g, kw)
	top, bs := bix.TopK(terms, k)
	fmt.Printf("   BANKS I:  %d answers, %d expansions, %d touched\n", len(a1), s1.Expansions, s1.Touched)
	fmt.Printf("   BANKS II: %d answers within BANKS I's budget (%d expansions)\n", len(a2), s2.Expansions)
	fmt.Printf("   BLINKS:   %d answers, %d sorted + %d random accesses (index %d entries)\n",
		len(top), bs.SortedAccesses, bs.RandomAccesses, bix.Entries())
	return firstErr(
		expect(len(a1) == k && len(top) == k, "missing answers"),
		expect(approxEqual(a1[0].Cost, top[0].Cost), "BANKS top-1 %v != BLINKS top-1 %v", a1[0].Cost, top[0].Cost),
		expect(bs.SortedAccesses+bs.RandomAccesses < g.Len(),
			"indexed query-time work should be far below a graph traversal"),
	)
}

func approxEqual(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func runE17() error {
	db := dataset.DBLP(dataset.DefaultDBLPConfig())
	ix := invindex.FromDB(db)
	ev := cn.NewEvaluator(db, ix, []string{"keyword", "search"})
	g := schemagraph.FromDB(db)
	cns := cn.Enumerate(g, cn.EnumerateOptions{
		MaxSize:       5,
		KeywordTables: ev.KeywordTables(),
		FreeTables:    []string{"write", "cite"},
	})
	const k = 5
	tN := timeIt(3, func() { cn.TopKNaive(ev, cns, k) })
	tS := timeIt(3, func() { cn.TopKSparse(ev, cns, k) })
	tG := timeIt(3, func() { cn.TopKGlobalPipeline(ev, cns, k) })
	n := cn.TopKNaive(ev, cns, k)
	gp := cn.TopKGlobalPipeline(ev, cns, k)
	fmt.Printf("   %d CNs; top-%d: naive %v  sparse %v  global-pipeline %v\n", len(cns), k, tN, tS, tG)
	return firstErr(
		expect(len(n) == len(gp), "strategies disagree on result count"),
		expect(len(n) > 0 && approxEqual(n[0].Score, gp[0].Score), "top-1 scores differ"),
	)
}

func runE18() error {
	db := dataset.DBLP(dataset.DefaultDBLPConfig())
	ix := invindex.FromDB(db)
	ev := cn.NewEvaluator(db, ix, []string{"keyword", "search"})
	g := schemagraph.FromDB(db)
	cns := cn.Enumerate(g, cn.EnumerateOptions{
		MaxSize:       4,
		KeywordTables: ev.KeywordTables(),
		FreeTables:    []string{"write", "cite"},
	})
	s := spark.NewScorer(ev, ix)
	const k = 1
	nav, nStats := spark.TopKNaive(s, cns, k)
	sky, sStats := spark.TopKSkyline(s, cns, k)
	blk, bStats := spark.TopKBlockPipeline(s, cns, k, 8)
	full := 0
	for _, c := range cns {
		p := 1
		for _, n := range c.KeywordNodes() {
			p *= len(ev.KeywordSet(c.Nodes[n].Table))
		}
		full += p
	}
	fmt.Printf("   combination space %d; probes: naive(full eval) n/a, skyline %d, block %d\n",
		full, sStats.Probes, bStats.Probes)
	fmt.Printf("   combos considered: naive %d results, skyline %d, block %d\n",
		nStats.Combinations, sStats.Combinations, bStats.Combinations)
	return firstErr(
		expect(len(nav) == len(sky) && len(nav) == len(blk), "result counts differ"),
		expect(len(nav) == 0 || approxEqual(nav[0].SparkScore, sky[0].SparkScore), "skyline top-1 differs"),
		expect(sStats.Probes*2 < full, "skyline did not terminate early (%d of %d)", sStats.Probes, full),
	)
}

func runE19() error {
	db := dataset.DBLP(dataset.DefaultDBLPConfig())
	ix := invindex.FromDB(db)
	ev := cn.NewEvaluator(db, ix, []string{"keyword", "search"})
	g := schemagraph.FromDB(db)
	cns := cn.Enumerate(g, cn.EnumerateOptions{
		MaxSize:       5,
		KeywordTables: ev.KeywordTables(),
		FreeTables:    []string{"write", "cite"},
	})
	jobs := make([]parallel.Job, len(cns))
	for i, c := range cns {
		jobs[i] = parallel.Decompose(c, ev)
	}
	for _, w := range []int{1, 2, 4, 8} {
		naive := parallel.NaivePartition(jobs, w)
		sharing := parallel.SharingAwarePartition(jobs, w)
		fmt.Printf("   workers=%d: makespan naive %.0f  sharing-aware %.0f\n",
			w, naive.Makespan(), sharing.Makespan())
		if sharing.Makespan() > naive.Makespan()+1e-9 {
			return fmt.Errorf("sharing-aware worse at %d workers", w)
		}
	}
	return nil
}

func runE20() error {
	for _, smin := range []int{5, 100, 2000} {
		tr := dataset.KeywordTree(4, 5, map[string]int{"k0": smin, "k1": 2000}, 2)
		ix := xmltree.NewIndex(tr)
		terms := []string{"k0", "k1"}
		tILE := timeIt(5, func() { lca.SLCA(ix, terms) })
		tScan := timeIt(5, func() { lca.SLCAScan(ix, terms) })
		tMulti := timeIt(5, func() { lca.SLCAMultiway(ix, terms) })
		a, b := lca.SLCA(ix, terms), lca.SLCAScan(ix, terms)
		fmt.Printf("   |Smin|=%-5d: ILE %-10v scan %-10v multiway %-10v (results %d=%d)\n",
			smin, tILE, tScan, tMulti, len(a), len(b))
		if len(a) != len(b) {
			return fmt.Errorf("SLCA variants disagree at smin=%d", smin)
		}
	}
	return nil
}

func runE23() error {
	db := dataset.DBLP(dataset.DefaultDBLPConfig())
	g := datagraph.FromDB(db, nil)
	h := blinks.NewHubIndex(g, 8)
	n := g.Len()
	// Sample distances and compare with plain Dijkstra.
	pairs := [][2]datagraph.NodeID{{1, 99}, {5, 500}, {42, 1000}, {7, 7}}
	for _, p := range pairs {
		want, wok := g.Dijkstra(p[0], datagraph.Inf)[p[1]]
		got, gok := h.Distance(p[0], p[1])
		if wok != gok || (wok && !approxEqual(want, got)) {
			return fmt.Errorf("d(%d,%d): hub %v/%v vs dijkstra %v/%v", p[0], p[1], got, gok, want, wok)
		}
	}
	tHub := timeIt(20, func() { h.Distance(1, 99) })
	tDij := timeIt(20, func() { _ = g.Dijkstra(1, datagraph.Inf)[99] })
	fmt.Printf("   |V|=%d: hub index %d entries (APSP would be %d); query hub %v vs dijkstra %v\n",
		n, h.Entries(), n*n, tHub, tDij)
	return expect(h.Entries() < n*n, "hub index not smaller than APSP")
}
