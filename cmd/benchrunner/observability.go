package main

// E38: the production observability suite's cost. The full suite —
// tail-sampling slow-query log (every query runs a root span), a
// structured logger in the request context, windowed latency series and
// SLO burn gauges — is paired against the same engine with none of it
// installed. Pairing is per query — each workload query runs on both
// arms back-to-back, the minimum per (query, arm) survives across
// rounds, and the overhead is the ratio of the per-arm sums of minima —
// so a load spike on a shared box must persist across every round of a
// ~4ms window to bias the comparison. The 5% budget is enforced by
// verify.sh via the -obs-overhead gate.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"kwsearch/internal/core"
	"kwsearch/internal/dataset"
	"kwsearch/internal/obs"
)

func init() {
	register("E38", "observability suite overhead — tail-sampled traces, ctx logger, windowed SLO metrics vs obs-off", runE38)
}

// obsOverheadBudgetPct is the acceptance budget: the full suite may cost
// at most this much over the obs-off baseline.
const obsOverheadBudgetPct = 5.0

// observabilityJSON is the BENCH_exec.json "observability" block.
type observabilityJSON struct {
	// OverheadPct is (FullNS / BaselineNS - 1) * 100. Each arm's time is
	// the sum over workload queries of that query's minimum across
	// rounds. The minimum is the noise-resistant estimator — scheduling
	// interference only ever adds time, so the min is the closest
	// observation of each (query, arm)'s true cost; coarser designs
	// (whole-workload best-of, median of per-round ratios) both produced
	// readings past the whole budget under a concurrently running test
	// suite.
	OverheadPct float64 `json:"overhead_pct"`
	Rounds      int     `json:"rounds"`
	// BaselineNS / FullNS are the per-arm sums of per-query minima.
	BaselineNS int64 `json:"baseline_ns"`
	FullNS     int64 `json:"full_ns"`
	// SlowlogCaptured counts the exemplars the probe queries left behind
	// (a deadline-partial probe plus everything past the threshold).
	SlowlogCaptured uint64 `json:"slowlog_captured"`
	// PromScrapeBytes is the size of one /metrics/prom exposition of the
	// instrumented engine after the workload.
	PromScrapeBytes int `json:"prom_scrape_bytes"`
}

// obsWorkload runs the shared executor workload once through
// Engine.Query in the warm-plan steady state and returns its wall time.
func obsWorkload(ctx context.Context, e *core.Engine) (time.Duration, error) {
	total := time.Duration(0)
	for _, terms := range execQueries {
		d, err := obsQuery(ctx, e, strings.Join(terms, " "))
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total, nil
}

// obsQuery times one warm-plan steady-state query (value caches
// flushed, compiled plan kept).
func obsQuery(ctx context.Context, e *core.Engine, query string) (time.Duration, error) {
	e.Exec.InvalidateDataCaches()
	req := core.Request{Query: query, TopK: 10, MaxCNSize: 5, Workers: 4}
	start := time.Now()
	_, err := e.Query(ctx, req)
	return time.Since(start), err
}

// measureObservability prices the full suite against obs-off and
// collects the block's evidence counters.
func measureObservability() (observabilityJSON, error) {
	db := dataset.DBLP(dataset.DefaultDBLPConfig())
	off := core.NewRelational(db)
	full := core.NewRelational(db)
	sl := obs.NewSlowLog(64, core.DefaultSLOThreshold)
	full.SetSlowLog(sl)
	fullCtx := obs.WithLogger(context.Background(), obs.NewLogger(io.Discard, obs.LevelInfo))
	fullCtx = obs.WithRequestID(fullCtx, "bench-obs")

	// Warm both engines (plan compilation out of the timing).
	if _, err := obsWorkload(context.Background(), off); err != nil {
		return observabilityJSON{}, err
	}
	if _, err := obsWorkload(fullCtx, full); err != nil {
		return observabilityJSON{}, err
	}

	// The same noise controls as the E35 ctx probe (measureResilience),
	// at per-query granularity: the garbage collector is parked for the
	// whole probe with one explicit collection between rounds (so a
	// pause cannot land inside a timed region), each query's two arms
	// run back-to-back (pinning every comparison to one ~4ms thermal
	// state, not one per 40ms workload), the leading arm alternates per
	// (round, query) so drift taxes both arms equally, and the per-arm
	// time is the sum of per-query minima across rounds — interference
	// only ever adds time, so each minimum is the cleanest observation
	// of that query on that arm. Coarser pairings (whole-workload
	// best-of, median of per-round ratios) both swung past the 5%
	// budget when go test ./... saturated the box.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const rounds = 10
	const far = time.Duration(1<<63 - 1)
	minOff := make([]time.Duration, len(execQueries))
	minFull := make([]time.Duration, len(execQueries))
	for i := range minOff {
		minOff[i], minFull[i] = far, far
	}
	for r := 0; r < rounds; r++ {
		runtime.GC() // collect outside the timed regions, not inside them
		for qi, terms := range execQueries {
			q := strings.Join(terms, " ")
			var tOff, tFull time.Duration
			var errOff, errFull error
			if (r+qi)%2 == 0 {
				tOff, errOff = obsQuery(context.Background(), off, q)
				tFull, errFull = obsQuery(fullCtx, full, q)
			} else {
				tFull, errFull = obsQuery(fullCtx, full, q)
				tOff, errOff = obsQuery(context.Background(), off, q)
			}
			if err := firstErr(errOff, errFull); err != nil {
				return observabilityJSON{}, err
			}
			if tOff < minOff[qi] {
				minOff[qi] = tOff
			}
			if tFull < minFull[qi] {
				minFull[qi] = tFull
			}
		}
	}
	var bestOff, bestFull time.Duration
	for i := range minOff {
		bestOff += minOff[i]
		bestFull += minFull[i]
	}

	// A deadline-partial probe proves the tail-sampling path captures
	// under the production threshold (the workload itself is healthy).
	if _, err := full.Query(fullCtx, core.Request{
		Query: "keyword search", TopK: 10000, MaxCNSize: 6, Workers: 4, Deadline: time.Millisecond,
	}); err != nil {
		return observabilityJSON{}, err
	}

	var sb strings.Builder
	if _, err := obs.WritePromText(&sb, full.Metrics.Snapshot()); err != nil {
		return observabilityJSON{}, err
	}

	return observabilityJSON{
		OverheadPct:     (float64(bestFull)/float64(bestOff) - 1) * 100,
		Rounds:          rounds,
		BaselineNS:      bestOff.Nanoseconds(),
		FullNS:          bestFull.Nanoseconds(),
		SlowlogCaptured: sl.Captured(),
		PromScrapeBytes: sb.Len(),
	}, nil
}

func runE38() error {
	o, err := measureObservability()
	if err != nil {
		return err
	}
	fmt.Printf("   suite overhead %.2f%% (budget %.0f%%): baseline %v vs full %v, per-query minima over %d rounds\n",
		o.OverheadPct, obsOverheadBudgetPct, time.Duration(o.BaselineNS), time.Duration(o.FullNS), o.Rounds)
	fmt.Printf("   slowlog captured %d exemplar(s); /metrics/prom scrape %d bytes\n",
		o.SlowlogCaptured, o.PromScrapeBytes)
	// The ≤5% budget itself is enforced by `benchrunner -obs-overhead`
	// (the verify.sh gate), which runs with the box to itself. E38 also
	// runs under `go test ./...` via TestAllExperimentsReproduce, where
	// every other package's tests saturate the cores concurrently — in
	// that environment a 5% wall-clock comparison is unresolvable (the
	// same engine pair measured 5-22% apart under deliberate saturation),
	// so asserting it here would only ever fail on noise. The experiment
	// asserts the functional evidence instead, exactly as E35 does with
	// its ctx-overhead budget (asserted by BenchmarkCtxOverhead, not by
	// the experiment).
	return firstErr(
		expect(o.SlowlogCaptured > 0, "deadline probe left no slowlog exemplar"),
		expect(o.PromScrapeBytes > 0, "empty prom exposition"),
	)
}
