package main

import (
	"context"
	"os"
	"path/filepath"

	"kwsearch/internal/analysis"
	"kwsearch/internal/analysis/rules"
)

// lintJSON is the kwslint block of BENCH_exec.json: wall time of the
// full-tree analysis, serial vs parallel driver, so the linter's own
// performance has a recorded trajectory like every other subsystem.
type lintJSON struct {
	Packages    int     `json:"packages"`
	Rules       int     `json:"rules"`
	SerialNS    int64   `json:"serial_ns"`
	ParallelNS  int64   `json:"parallel_ns"`
	Speedup     float64 `json:"speedup"`
	Workers     int     `json:"workers"`
	Diagnostics int     `json:"diagnostics"`
}

// measureLint times analysis.AnalyzeDirs over the whole module with one
// worker and with the default worker count. It calls the driver
// in-process (no `go run` compile step) so the numbers isolate analysis
// cost. Best-of-2: package load dominates and is disk-cache sensitive.
func measureLint() (lintJSON, error) {
	root, err := moduleRoot()
	if err != nil {
		return lintJSON{}, err
	}
	ld, err := analysis.NewLoader(root)
	if err != nil {
		return lintJSON{}, err
	}
	dirs, err := ld.MatchDirs([]string{filepath.Join(root, "...")})
	if err != nil {
		return lintJSON{}, err
	}
	ruleSet := rules.Default()
	ctx := context.Background()

	var results []analysis.DirResult
	serial := bestOf(2, func() { results = analysis.AnalyzeDirs(ctx, root, dirs, ruleSet, 1) })
	parallel := bestOf(2, func() { results = analysis.AnalyzeDirs(ctx, root, dirs, ruleSet, 0) })

	diags := 0
	for _, r := range results {
		diags += len(r.Diags)
	}
	return lintJSON{
		Packages:    len(dirs),
		Rules:       len(ruleSet),
		SerialNS:    serial.Nanoseconds(),
		ParallelNS:  parallel.Nanoseconds(),
		Speedup:     float64(serial) / float64(parallel),
		Workers:     0, // 0 = GOMAXPROCS at run time
		Diagnostics: diags,
	}, nil
}

// moduleRoot walks up from the working directory to the go.mod, so the
// lint measurement covers the whole module wherever benchrunner runs.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ".", nil
		}
		dir = parent
	}
}
