package main

import (
	"context"
	"fmt"
	"time"

	"kwsearch/internal/cn"
	"kwsearch/internal/dataset"
	"kwsearch/internal/invindex"
	"kwsearch/internal/plan"
	"kwsearch/internal/schemagraph"
)

func init() {
	register("E37", "plan cache — compiled CN sets keyed by schema fingerprint + membership signature; parallel cold path ≡ serial", runE37)
}

// runE37 exercises the plan-compilation insight on the DBLP schema: CN
// enumeration depends only on the schema graph and the keyword→relation
// membership signature, so distinct queries sharing a signature share a
// compiled plan. The experiment checks the parallel cold path is
// byte-identical to serial enumeration, that a warm hit is orders of
// magnitude cheaper than a compile, that distinct queries with one
// signature hit, and that invalidation forces a recompile.
func runE37() error {
	db := dataset.DBLP(dataset.DefaultDBLPConfig())
	ix := invindex.FromDB(db)
	sg := schemagraph.FromDB(db)

	// "wang search" and "chen database": different keywords, same
	// membership signature {author, paper}.
	sigOf := func(terms ...string) cn.EnumerateOptions {
		return cn.EnumerateOptions{
			MaxSize:       5,
			KeywordTables: cn.NewEvaluator(db, ix, terms).KeywordTables(),
			FreeTables:    []string{"write", "cite"},
		}
	}
	a, b := sigOf("wang", "search"), sigOf("chen", "database")

	serial, err := cn.EnumerateCtx(context.Background(), sg, a)
	if err != nil {
		return err
	}
	par, err := plan.EnumerateParallel(context.Background(), sg, a, 4)
	if err != nil {
		return err
	}
	identical := len(par) == len(serial)
	for i := 0; identical && i < len(par); i++ {
		identical = par[i].Canonical() == serial[i].Canonical()
	}

	pc := plan.New(plan.Options{Workers: 4})
	coldStart := time.Now()
	ps, coldHit, err := pc.Get(context.Background(), sg, a)
	if err != nil {
		return err
	}
	cold := time.Since(coldStart)
	_, crossHit, err := pc.Get(context.Background(), sg, b)
	if err != nil {
		return err
	}
	const batch = 1000
	warm := bestOf(3, func() {
		for i := 0; i < batch; i++ {
			if _, hit, e := pc.Get(context.Background(), sg, a); e != nil || !hit {
				panic(fmt.Sprintf("warm Get: hit=%v err=%v", hit, e))
			}
		}
	}) / batch
	pc.Invalidate()
	_, staleHit, err := pc.Get(context.Background(), sg, a)
	if err != nil {
		return err
	}

	fmt.Printf("   %d CNs; cold compile %v, warm hit %v (%.0fx); cross-query signature hit=%v\n",
		ps.Len(), cold, warm, float64(cold)/float64(warm), crossHit)
	return firstErr(
		expect(identical, "parallel enumeration differs from serial (%d vs %d CNs)", len(par), len(serial)),
		expect(!coldHit, "first Get claimed a cache hit"),
		expect(crossHit, "distinct query with the same membership signature missed the plan cache"),
		expect(warm < cold/10, "warm hit %v not at least 10x cheaper than cold compile %v", warm, cold),
		expect(!staleHit, "Get hit a stale plan after Invalidate"),
	)
}
