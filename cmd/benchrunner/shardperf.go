package main

// E40 — scatter-gather sharding. The exec workload runs through the
// internal/shard coordinator at 1, 2, 4 and 8 shards (one pool worker
// per shard, so total parallelism equals the shard count) and the
// answers must be byte-identical across every arm and to the
// single-engine executor. The timing arms feed the `sharding` block of
// BENCH_exec.json; the identity check doubles as benchrunner's
// -shard-gate (wired into verify.sh).

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"kwsearch/internal/core"
	"kwsearch/internal/dataset"
	"kwsearch/internal/shard"
)

func init() {
	register("E40", "Scatter-gather sharding: one logical engine over N shard engines (speedup, merge overhead, byte-identity)", runE40)
}

// shardArms are the shard counts E40 measures.
var shardArms = []int{1, 2, 4, 8}

// shardArmJSON is one shard-count arm of the sharding block.
type shardArmJSON struct {
	Shards int `json:"shards"`
	// WallNS is the best-of-3 wall time of the whole workload through
	// the coordinator in the warm steady state (plans and binder warm,
	// result caches invalidated per run), on this machine — with fewer
	// cores than shards the fan-out goroutines timeshare and this
	// number shows overhead, not speedup.
	WallNS int64 `json:"wall_ns"`
	// MergeNS is the summed coordinator merge overhead across the
	// workload's queries (from Stats.Merge, one representative run).
	MergeNS int64 `json:"merge_ns"`
	// CriticalNS models the workload's wall time on a machine with one
	// core per shard: per query, the slowest shard's sub-query timed
	// alone (no scheduler contention), summed over the workload.
	CriticalNS int64 `json:"critical_ns"`
	// WorkNS is the summed per-shard evaluation time — the total work
	// the fan-out spends, whose growth over the 1-shard arm is the
	// sharding tax.
	WorkNS int64 `json:"work_ns"`
	// Speedup is WallNS relative to the 1-shard arm (measured, this
	// machine); ModelSpeedup is CriticalNS+MergeNS relative to the
	// 1-shard arm's CriticalNS (what >=N cores would deliver).
	Speedup      float64 `json:"speedup"`
	ModelSpeedup float64 `json:"model_speedup"`
}

// shardingJSON is the `sharding` block of BENCH_exec.json (E40).
type shardingJSON struct {
	Dataset string `json:"dataset"`
	Queries int    `json:"queries"`
	// Cores is runtime.GOMAXPROCS(0) at measurement time — the context
	// for reading Speedup vs ModelSpeedup.
	Cores int            `json:"cores"`
	Arms  []shardArmJSON `json:"arms"`
}

// canonicalAnswer renders a response for exact comparison: the partial
// flag, then per result the score's float bits, the CN's canonical form
// and the bound tuples in node order — any divergence in order, score
// bits or bindings shows up.
func canonicalAnswer(resp *core.Response) string {
	var b strings.Builder
	if resp.Partial {
		b.WriteString("partial\n")
	}
	for _, r := range resp.Results {
		fmt.Fprintf(&b, "%016x %s", math.Float64bits(r.Score), r.CN.Canonical())
		for _, tp := range r.Tuples {
			fmt.Fprintf(&b, " %s#%d", tp.Table, tp.ID)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// shardWorkloadRequests lifts execQueries onto core.Request. The arm
// uses k=100 rather than the exec workload's k=10: at k=10 the single
// engine's top-k abandonment prunes most of the work sharding would
// split (each shard still owes its own full top-k over 1/N data, with
// a weaker local bound), while at k=100 evaluation dominates and the
// partition's work split shows through.
func shardWorkloadRequests() []core.Request {
	reqs := make([]core.Request, 0, len(execQueries))
	for _, terms := range execQueries {
		reqs = append(reqs, core.Request{Query: strings.Join(terms, " "), TopK: 100})
	}
	return reqs
}

// measureSharding runs the workload through the coordinator at each
// shard count, verifying byte-identity against the 1-shard arm and the
// single-engine executor before timing anything, and returns the
// sharding block.
func measureSharding() (shardingJSON, error) {
	engine := core.NewRelational(dataset.DBLP(dataset.DefaultDBLPConfig()))
	reqs := shardWorkloadRequests()
	doc := shardingJSON{Dataset: "dblp", Queries: len(reqs), Cores: runtime.GOMAXPROCS(0)}

	// Single-engine reference through the exec pool (the path every
	// shard view also runs, so the comparison covers order and ties).
	refs := make([]string, len(reqs))
	for i, req := range reqs {
		breq := req
		breq.Workers = 2
		resp, err := engine.Query(context.Background(), breq)
		if err != nil {
			return doc, err
		}
		refs[i] = canonicalAnswer(resp)
	}

	var baseline, baselineCritical time.Duration
	for _, n := range shardArms {
		coord, err := shard.New(engine, shard.Options{Shards: n, Workers: 1})
		if err != nil {
			return doc, err
		}
		// Identity pass (also warms the arm's private shard caches).
		for i, req := range reqs {
			resp, err := coord.Query(context.Background(), req)
			if err != nil {
				return doc, err
			}
			if got := canonicalAnswer(resp); got != refs[i] {
				return doc, fmt.Errorf("shards=%d query %q: answer differs from the single-engine reference\ngot:\n%swant:\n%s",
					n, req.Query, got, refs[i])
			}
		}
		// Timing pass: warm plans/binder, cold result caches. The merge
		// total is taken from the last of the three runs — merge time is
		// measured per query, not per best-of batch.
		var mergeTotal time.Duration
		wall := bestOf(3, func() {
			coord.InvalidateResults()
			mergeTotal = 0
			for _, req := range reqs {
				resp, err := coord.Query(context.Background(), req)
				if err != nil {
					panic(err)
				}
				mergeTotal += resp.Stats.Merge
			}
		})
		critical, work, err := shardCriticalPath(engine, reqs, n)
		if err != nil {
			return doc, err
		}
		arm := shardArmJSON{
			Shards: n, WallNS: wall.Nanoseconds(), MergeNS: mergeTotal.Nanoseconds(),
			CriticalNS: critical.Nanoseconds(), WorkNS: work.Nanoseconds(),
			Speedup: 1, ModelSpeedup: 1,
		}
		if n == 1 {
			baseline = wall
			baselineCritical = critical
		} else {
			if wall > 0 {
				arm.Speedup = float64(baseline) / float64(wall)
			}
			if modeled := critical + mergeTotal; modeled > 0 {
				arm.ModelSpeedup = float64(baselineCritical) / float64(modeled)
			}
		}
		doc.Arms = append(doc.Arms, arm)
	}
	return doc, nil
}

// shardCriticalPath times each shard's sub-query alone — one shard view
// per shard, queried serially, best of 3 with a cold result cache — so
// the numbers measure per-shard work rather than this machine's core
// count. Per query it accumulates the slowest shard (the critical path
// a one-core-per-shard deployment waits on) and the shard sum (the
// total work the fan-out spends).
func shardCriticalPath(engine *core.Engine, reqs []core.Request, n int) (critical, work time.Duration, err error) {
	views := make([]*core.Engine, n)
	for s := 0; s < n; s++ {
		views[s] = engine.ShardView(shard.OwnedBy(s, n), nil)
	}
	for _, req := range reqs {
		req.Workers = 1
		slowest := time.Duration(0)
		for _, v := range views {
			// Warm the view's plan fetch path once, then time with the
			// result cache cold (the steady state the wall pass uses).
			if _, err := v.Query(context.Background(), req); err != nil {
				return 0, 0, err
			}
			d := bestOf(3, func() {
				v.Exec.InvalidateResults()
				if _, qerr := v.Query(context.Background(), req); qerr != nil {
					panic(qerr)
				}
			})
			work += d
			if d > slowest {
				slowest = d
			}
		}
		critical += slowest
	}
	return critical, work, nil
}

func printSharding(doc shardingJSON) {
	fmt.Printf("   cores=%d (speedup is measured wall on this machine; model-speedup is the\n"+
		"   critical path — slowest shard timed alone — i.e. >=N-core wall)\n", doc.Cores)
	for _, arm := range doc.Arms {
		fmt.Printf("   shards=%d wall %-12v merge %-10v critical %-12v speedup %.2fx model %.2fx\n",
			arm.Shards, time.Duration(arm.WallNS), time.Duration(arm.MergeNS),
			time.Duration(arm.CriticalNS), arm.Speedup, arm.ModelSpeedup)
	}
}

func runE40() error {
	doc, err := measureSharding()
	if err != nil {
		return err
	}
	printSharding(doc)
	fmt.Printf("   byte-identity: coordinator answers at N=1/2/4/8 equal the single-engine reference\n")
	return nil
}
