package main

// E36: the serving layer end to end — kwsd's HTTP front end over a
// gated engine. The load generator proves served answers byte-identical
// to in-process Engine.Query and measures throughput and tail latency;
// a deliberate burst at ≥2× the gate's capacity measures the shed rate.
// The same measurement feeds the "serving" block of BENCH_exec.json.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"kwsearch/internal/core"
	"kwsearch/internal/dataset"
	"kwsearch/internal/server"
)

func init() {
	register("E36", "serving layer — HTTP answers byte-identical to in-process, throughput/p99 under concurrent load, shed rate at 2x capacity", runE36)
}

// servingJSON is the BENCH_exec.json "serving" block: the HTTP front
// end's cost on top of the engine it wraps.
type servingJSON struct {
	// AdmitLimit / AdmitQueue are the gate the measurement ran under.
	AdmitLimit int `json:"admit_limit"`
	AdmitQueue int `json:"admit_queue"`
	// Clients concurrent clients issued Queries total HTTP queries; OK
	// completed, Shed got 429, Mismatches differed from the in-process
	// answer (must be 0).
	Clients    int `json:"clients"`
	Queries    int `json:"queries"`
	OK         int `json:"ok"`
	Shed       int `json:"shed"`
	Mismatches int `json:"mismatches"`
	// ThroughputQPS / P99US summarize the steady-load phase.
	ThroughputQPS float64 `json:"throughput_qps"`
	P99US         int64   `json:"p99_us"`
	// BurstN simultaneous heavy queries at ≥2x gate capacity drew
	// BurstShed 429s: ShedRate = BurstShed/BurstN.
	BurstN    int     `json:"burst_n"`
	BurstShed int     `json:"burst_shed"`
	ShedRate  float64 `json:"shed_rate"`
}

// measureServing starts a gated kwsd-style server on a loopback port,
// runs the self-check workload for throughput/correctness, then a
// deliberate overload burst for the shed rate, and drains the server.
func measureServing() (servingJSON, error) {
	const limit, queue = 4, 8
	e := core.NewRelational(dataset.DBLP(dataset.DefaultDBLPConfig()))
	e.Admit(limit, queue)
	srv := server.New(e, server.Options{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return servingJSON{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	}()
	baseURL := "http://" + srv.Addr()

	// Steady load: the self-check's concurrent phase doubles as the
	// throughput measurement (the overload probe is run separately so
	// its sheds don't pollute the steady-state numbers).
	report, err := server.SelfCheck(context.Background(), baseURL, e, server.SelfCheckConfig{
		Clients: 8, PerClient: 10, SkipOverloadProbe: true,
	})
	if err != nil {
		return servingJSON{}, err
	}

	out := servingJSON{
		AdmitLimit: limit, AdmitQueue: queue,
		Clients: 8, Queries: report.Queries, OK: report.OK,
		Shed: report.Shed, Mismatches: report.Mismatches,
		ThroughputQPS: report.ThroughputQPS,
		P99US:         report.P99.Microseconds(),
	}

	// Overload: a simultaneous burst at ≥2x the gate's total capacity.
	// Scheduling can in principle serialize a burst, so retry a few
	// times before reporting a zero shed rate; per-attempt K keeps the
	// burst query out of the executor's result cache.
	client := &http.Client{Timeout: 30 * time.Second}
	for attempt := 0; attempt < 3 && out.BurstShed == 0; attempt++ {
		n := 2*(limit+queue) + 8
		statuses := make([]int, n)
		errs := make([]error, n)
		body, err := json.Marshal(server.QueryRequest{
			Query: "keyword search", TopK: 9000 - attempt, Workers: 2,
		})
		if err != nil {
			return out, err
		}
		startGun := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-startGun
				resp, err := client.Post(baseURL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errs[i] = err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				statuses[i] = resp.StatusCode
			}(i)
		}
		close(startGun)
		wg.Wait()
		out.BurstN, out.BurstShed = n, 0
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				return out, fmt.Errorf("burst query %d: %w", i, errs[i])
			}
			switch statuses[i] {
			case http.StatusOK:
			case http.StatusTooManyRequests:
				out.BurstShed++
			default:
				return out, fmt.Errorf("burst query %d: status %d, want 200 or 429", i, statuses[i])
			}
		}
	}
	if out.BurstN > 0 {
		out.ShedRate = float64(out.BurstShed) / float64(out.BurstN)
	}
	return out, nil
}

func runE36() error {
	s, err := measureServing()
	if err != nil {
		return err
	}
	fmt.Printf("   gate %d+%d: %d clients, %d queries, %.0f qps, p99 %v\n",
		s.AdmitLimit, s.AdmitQueue, s.Clients, s.Queries, s.ThroughputQPS, time.Duration(s.P99US)*time.Microsecond)
	fmt.Printf("   burst %d at 2x capacity: %d shed (rate %.2f)\n", s.BurstN, s.BurstShed, s.ShedRate)
	return firstErr(
		expect(s.Mismatches == 0, "%d served answers differed from in-process results", s.Mismatches),
		expect(s.OK > 0, "no query completed"),
		expect(s.BurstShed > 0, "burst at 2x capacity shed nothing across retries"),
		expect(s.ShedRate < 1, "burst shed everything; the gate admitted no query at all"),
	)
}
