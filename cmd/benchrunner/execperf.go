package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"kwsearch/internal/cache"
	"kwsearch/internal/cn"
	"kwsearch/internal/dataset"
	"kwsearch/internal/exec"
	"kwsearch/internal/invindex"
	"kwsearch/internal/obs"
	"kwsearch/internal/plan"
	"kwsearch/internal/schemagraph"
)

func init() {
	register("E33", "EMBANKS/Mragyati — concurrent cached executor: worker pool vs serial CN evaluation", runE33)
}

// execQueries are the workload behind both E27 and -performance: repeated
// queries (whole-query result-cache hits), distinct queries sharing a
// keyword→relation membership signature (plan-cache hits — enumeration
// depends on which tables match, never on the keyword values), and
// queries whose signatures differ (plan-cache misses), so every cache
// layer reaches a steady state the counters can show.
var execQueries = [][]string{
	{"keyword", "search"},     // cold: signature {paper}
	{"wang", "search"},        // cold: signature {author, paper}
	{"keyword", "search"},     // repeat: whole-query result-cache hit
	{"keyword", "database"},   // distinct query, same {paper} signature: plan hit
	{"query", "optimization"}, // another {paper} signature: plan hit
	{"wang", "database"},      // {author, paper} again: plan hit
	{"sigmod", "ranking"},     // cold: signature {conference, paper}
	{"keyword", "search"},     // repeat: result-cache hit
	{"chen", "xml"},           // {author, paper} again: plan hit
	{"query", "optimization"}, // repeat: result-cache hit
}

func newExecExecutor() *exec.Executor {
	db := dataset.DBLP(dataset.DefaultDBLPConfig())
	return exec.New(db, invindex.FromDB(db), exec.Options{
		Workers:    4,
		FreeTables: []string{"write", "cite"},
	})
}

func runE33() error {
	x := newExecExecutor()
	q := exec.Query{Terms: []string{"keyword", "search"}, K: 10, MaxCNSize: 5}

	// Best-of, not average: under `go test ./...` other packages run
	// concurrently and an average lets one load spike flip the
	// pool-vs-serial comparison. The pool arm runs in the warm steady
	// state (result cache invalidated, compiled CN plans and binder
	// term cache kept): production recompiles a plan only on the first
	// sighting of a membership signature and rebinds a term only after
	// a data-generation bump, so that is the comparison that matters.
	tSerial := bestOf(3, func() { x.TopKSerial(q) })
	if _, _, err := x.TopK(context.Background(), q); err != nil { // compile the plan, warm the binder
		return err
	}
	tParallel := bestOf(3, func() {
		x.InvalidateResults()
		if _, _, err := x.TopK(context.Background(), q); err != nil {
			panic(err)
		}
	})

	serial := x.TopKSerial(q)
	x.InvalidateResults() // report real execution stats, not a cache replay
	par, st, err := x.TopK(context.Background(), q)
	if err != nil {
		return err
	}
	fmt.Printf("   serial %-10v pool(4) %-10v  cns=%d evaluated=%d skipped=%d plan-hit=%v\n",
		tSerial, tParallel, st.CNs, st.Evaluated, st.Skipped, st.PlanCacheHit)
	fmt.Printf("   jobs per worker %v\n", st.JobsPerWorker)
	return firstErr(
		expect(len(par) == len(serial), "pool returned %d results, serial %d", len(par), len(serial)),
		expect(len(par) == 0 || approxEqual(par[0].Score, serial[0].Score),
			"pool top-1 %v != serial top-1 %v", par[0].Score, serial[0].Score),
		expect(tParallel < tSerial, "pool (%v) not faster than serial (%v)", tParallel, tSerial),
		expect(st.PlanCacheHit, "steady-state execution missed the plan cache"),
	)
}

// cacheJSON mirrors cache.Stats with stable JSON field names.
type cacheJSON struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Stale     uint64  `json:"stale"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

func toCacheJSON(s cache.Stats) cacheJSON {
	return cacheJSON{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		Stale: s.Stale, Entries: s.Entries, HitRate: s.HitRate(),
	}
}

// planCacheJSON is the plan-cache block of BENCH_exec.json: the
// steady-state counters of the workload pass plus the directly measured
// cost of the three plan paths (cold serial compile, cold parallel
// compile, warm hit).
type planCacheJSON struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	Builds  uint64  `json:"builds"`
	// ColdSerialNS / ColdParallelNS time one compile of the two-seed
	// "wang search" signature via cn.EnumerateCtx and
	// plan.EnumerateParallel(workers=4); WarmHitNS times one cache hit
	// of the same signature (averaged over a batch — a hit is too fast
	// for single-shot timing).
	ColdSerialNS   int64 `json:"cold_serial_ns"`
	ColdParallelNS int64 `json:"cold_parallel_ns"`
	WarmHitNS      int64 `json:"warm_hit_ns"`
}

// execPerfJSON is the BENCH_exec.json document: wall times plus the
// efficiency counters that explain them.
type execPerfJSON struct {
	Dataset  string     `json:"dataset"`
	Workers  int        `json:"workers"`
	Queries  [][]string `json:"queries"`
	SerialNS int64      `json:"serial_ns"`
	// ParallelNS times the pool executor in the warm steady state
	// (compiled CN plans and binder term cache kept, whole-query result
	// cache invalidated per run); ParallelColdNS times it with every
	// cache cold, the first-sighting-of-a-signature cost.
	ParallelNS     int64   `json:"parallel_ns"`
	ParallelColdNS int64   `json:"parallel_cold_ns"`
	Speedup        float64 `json:"speedup"`
	SpeedupCold    float64 `json:"speedup_cold"`
	// EnumerateColdNS / EnumerateWarmNS are the headline before/after of
	// the plan cache: full serial CN enumeration vs a plan-cache hit for
	// the same membership signature.
	EnumerateColdNS int64         `json:"enumerate_cold_ns"`
	EnumerateWarmNS int64         `json:"enumerate_warm_ns"`
	CNs             int           `json:"cns"`
	Evaluated       uint64        `json:"evaluated"`
	Skipped         uint64        `json:"skipped"`
	PrefixReuses    uint64        `json:"prefix_reuses"`
	JobsPerWorker   []int         `json:"jobs_per_worker"`
	ResultCacheHits int           `json:"result_cache_hits"`
	PlanCacheHits   int           `json:"plan_cache_hits"`
	PostingCache    cacheJSON     `json:"posting_cache"`
	ResultCache     cacheJSON     `json:"result_cache"`
	PlanCache       planCacheJSON `json:"plan_cache"`
	// Bind is the binder's before/after: full-scan vs posting-list
	// binding, cold vs warm term cache, and the warm bind share the
	// -bind-gate budget guards (see bindperf.go).
	Bind bindJSON `json:"bind"`
	// Stages is the per-stage wall-time breakdown of one traced cold
	// execution of the first workload query (span-tree derived):
	// enumerate, evaluate, and the per-worker evaluate children.
	Stages []stageJSON `json:"stages"`
	// StagesWarm is the same breakdown in the warm-plan steady state
	// (plans cached, data caches invalidated): the enumerate share here
	// is what a production query actually pays.
	StagesWarm []stageJSON `json:"stages_warm"`
	// Resilience records the robustness layer's costs: deadline-carrying
	// context overhead on the pool executor and shed-decision latency
	// under a saturated admission gate (E35).
	Resilience resilienceJSON `json:"resilience"`
	// Serving records the HTTP front end's throughput, tail latency and
	// shed rate over a gated engine (E36).
	Serving servingJSON `json:"serving"`
	// Lint records the static-analysis driver's full-tree wall time,
	// serial vs parallel (see cmd/kwslint).
	Lint lintJSON `json:"kwslint"`
	// Observability records the production observability suite's cost
	// over obs-off plus its evidence counters (E38).
	Observability observabilityJSON `json:"observability"`
	// Sharding records the scatter-gather coordinator's workload wall
	// time, speedup and merge overhead at 1/2/4/8 shards (E40).
	Sharding shardingJSON `json:"sharding"`
}

// stageJSON is one pipeline stage's share of the traced execution. Name
// is the span path from the root ("evaluate/worker-0"); Percent is the
// stage's share of the root span's wall time (children overlap their
// parents, so percentages do not sum to 100).
type stageJSON struct {
	Name    string  `json:"name"`
	NS      int64   `json:"ns"`
	Percent float64 `json:"percent"`
}

// stagesFromTrace flattens the span tree below root into stage rows.
func stagesFromTrace(root *obs.Span) []stageJSON {
	total := root.Duration()
	var out []stageJSON
	path := map[*obs.Span]string{root: ""}
	root.Walk(func(sp *obs.Span, depth int) {
		for _, c := range sp.Children() {
			if path[sp] == "" {
				path[c] = c.Name()
			} else {
				path[c] = path[sp] + "/" + c.Name()
			}
		}
		if sp == root {
			return
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(sp.Duration()) / float64(total)
		}
		out = append(out, stageJSON{Name: path[sp], NS: sp.Duration().Nanoseconds(), Percent: pct})
	})
	return out
}

// bestOf reports the fastest of n runs of f — single runs are too noisy
// on a shared box for a number recorded in the perf trajectory.
func bestOf(n int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// measurePlanCosts directly times the three plan paths for the two-seed
// "wang search" membership signature: a cold serial compile
// (cn.EnumerateCtx), a cold parallel compile (plan.EnumerateParallel,
// 4 workers), and a warm cache hit (averaged over a batch of 1000 —
// a hit is sub-microsecond).
func measurePlanCosts() (coldSerial, coldParallel, warmHit time.Duration, err error) {
	db := dataset.DBLP(dataset.DefaultDBLPConfig())
	ix := invindex.FromDB(db)
	sg := schemagraph.FromDB(db)
	ev := cn.NewEvaluator(db, ix, []string{"wang", "search"})
	eopts := cn.EnumerateOptions{
		MaxSize:       5,
		KeywordTables: ev.KeywordTables(),
		FreeTables:    []string{"write", "cite"},
	}
	coldSerial = bestOf(5, func() {
		if _, e := cn.EnumerateCtx(context.Background(), sg, eopts); e != nil {
			panic(e)
		}
	})
	coldParallel = bestOf(5, func() {
		if _, e := plan.EnumerateParallel(context.Background(), sg, eopts, 4); e != nil {
			panic(e)
		}
	})
	pc := plan.New(plan.Options{Workers: 4})
	if _, _, e := pc.Get(context.Background(), sg, eopts); e != nil {
		return 0, 0, 0, e
	}
	const batch = 1000
	warmHit = bestOf(3, func() {
		for i := 0; i < batch; i++ {
			if _, hit, e := pc.Get(context.Background(), sg, eopts); e != nil || !hit {
				panic(fmt.Sprintf("warm Get: hit=%v err=%v", hit, e))
			}
		}
	}) / batch
	return coldSerial, coldParallel, warmHit, nil
}

// traceOnce runs one traced execution of the first workload query and
// returns the finished root span.
func traceOnce(x *exec.Executor) (*obs.Span, error) {
	root := obs.StartSpan("query")
	if _, _, err := x.TopK(context.Background(), exec.Query{
		Terms: execQueries[0], K: 10, MaxCNSize: 5, Workers: 4, Trace: root,
	}); err != nil {
		return nil, err
	}
	root.End()
	return root, nil
}

// writeExecPerformance runs the executor workload and writes the
// efficiency report to path — the benchrunner -performance entry point.
// Timing and counter collection are separate passes: timing wants
// repeatable best-of-3 executions at controlled cache temperature,
// counters want the workload's natural cache behavior (repeats and
// shared signatures hitting).
func writeExecPerformance(path string) error {
	timing := newExecExecutor()
	var serialTotal, parallelTotal, parallelColdTotal time.Duration
	for _, terms := range execQueries {
		q := exec.Query{Terms: terms, K: 10, MaxCNSize: 5, Workers: 4}
		serialTotal += bestOf(3, func() { timing.TopKSerial(q) })
		parallelColdTotal += bestOf(3, func() {
			timing.InvalidateCaches()
			if _, _, err := timing.TopK(context.Background(), q); err != nil {
				panic(err)
			}
		})
		// Warm steady state: the signature's compiled plan and the
		// binder's term cache stay warm (as they do in production across
		// distinct queries over unchanged data); only the whole-query
		// result cache is cleared so evaluation actually runs.
		parallelTotal += bestOf(3, func() {
			timing.InvalidateResults()
			if _, _, err := timing.TopK(context.Background(), q); err != nil {
				panic(err)
			}
		})
	}

	x := newExecExecutor()
	var lastStats exec.Stats
	resultHits, planHits := 0, 0
	for _, terms := range execQueries {
		q := exec.Query{Terms: terms, K: 10, MaxCNSize: 5, Workers: 4}
		_, st, err := x.TopK(context.Background(), q)
		if err != nil {
			return err
		}
		switch {
		case st.ResultCacheHit:
			resultHits++
		default:
			if st.PlanCacheHit {
				planHits++
			}
			lastStats = st
		}
	}
	// Snapshot the plan counters before the traced runs below: the cold
	// trace invalidates and recompiles, which would inflate Builds past
	// the workload's miss count.
	planStats := x.Plans().Stats()
	planBuilds := x.Plans().Builds()

	// Two traced executions yield the per-stage breakdowns: one fully
	// cold, one in the warm-plan steady state.
	x.InvalidateCaches()
	rootCold, err := traceOnce(x)
	if err != nil {
		return err
	}
	x.InvalidateResults()
	rootWarm, err := traceOnce(x)
	if err != nil {
		return err
	}

	coldSerial, coldParallel, warmHit, err := measurePlanCosts()
	if err != nil {
		return err
	}

	bindScan, bindCold, bindWarm := measureBindCosts()
	warmShare := 0.0
	for _, stg := range stagesFromTrace(rootWarm) {
		if stg.Name == "bind" {
			warmShare = stg.Percent
		}
	}
	binderStats := x.BinderStats()

	res, err := measureResilience()
	if err != nil {
		return err
	}
	serving, err := measureServing()
	if err != nil {
		return err
	}
	lint, err := measureLint()
	if err != nil {
		return err
	}
	sharding, err := measureSharding()
	if err != nil {
		return err
	}
	observability, err := measureObservability()
	if err != nil {
		return err
	}

	evaluated, skipped, reuses := x.CounterTotals()
	postings, results := x.CacheStats()
	doc := execPerfJSON{
		Dataset:         "dblp",
		Workers:         4,
		Queries:         execQueries,
		SerialNS:        serialTotal.Nanoseconds(),
		ParallelNS:      parallelTotal.Nanoseconds(),
		ParallelColdNS:  parallelColdTotal.Nanoseconds(),
		Speedup:         float64(serialTotal) / float64(parallelTotal),
		SpeedupCold:     float64(serialTotal) / float64(parallelColdTotal),
		EnumerateColdNS: coldSerial.Nanoseconds(),
		EnumerateWarmNS: warmHit.Nanoseconds(),
		CNs:             lastStats.CNs,
		Evaluated:       evaluated,
		Skipped:         skipped,
		PrefixReuses:    reuses,
		JobsPerWorker:   lastStats.JobsPerWorker,
		ResultCacheHits: resultHits,
		PlanCacheHits:   planHits,
		PostingCache:    toCacheJSON(postings),
		ResultCache:     toCacheJSON(results),
		PlanCache: planCacheJSON{
			Hits:           planStats.Hits,
			Misses:         planStats.Misses,
			HitRate:        planStats.HitRate(),
			Builds:         planBuilds,
			ColdSerialNS:   coldSerial.Nanoseconds(),
			ColdParallelNS: coldParallel.Nanoseconds(),
			WarmHitNS:      warmHit.Nanoseconds(),
		},
		Bind: bindJSON{
			ScanNS:       bindScan.Nanoseconds(),
			ColdNS:       bindCold.Nanoseconds(),
			WarmNS:       bindWarm.Nanoseconds(),
			WarmSharePct: warmShare,
			Hits:         binderStats.Hits,
			Misses:       binderStats.Misses,
			HitRate:      binderStats.HitRate(),
			Builds:       x.Binder().Builds(),
		},
		Stages:     stagesFromTrace(rootCold),
		StagesWarm: stagesFromTrace(rootWarm),
		Resilience:    res,
		Serving:       serving,
		Lint:          lint,
		Observability: observability,
		Sharding:      sharding,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("performance: serial %v, pool(4) warm-plan %v (%.2fx), cold %v (%.2fx) — wrote %s\n",
		serialTotal, parallelTotal, doc.Speedup, parallelColdTotal, doc.SpeedupCold, path)
	fmt.Printf("performance: caches postings %d/%d hits, results %d/%d hits, %d evictions\n",
		postings.Hits, postings.Hits+postings.Misses,
		results.Hits, results.Hits+results.Misses,
		postings.Evictions+results.Evictions)
	fmt.Printf("performance: plans %d/%d hits, %d builds; enumerate cold %v vs warm hit %v\n",
		planStats.Hits, planStats.Hits+planStats.Misses, planBuilds, coldSerial, warmHit)
	fmt.Printf("performance: bind scan %v vs cold %v vs warm %v, warm share %.1f%%, binder %d/%d hits\n",
		bindScan, bindCold, bindWarm, warmShare, binderStats.Hits, binderStats.Hits+binderStats.Misses)
	fmt.Printf("performance: ctx overhead %.1f%% (background %v vs deadline %v), shed p99 %dµs\n",
		res.CtxOverheadPct, time.Duration(res.CtxBackgroundNS), time.Duration(res.CtxDeadlineNS), res.ShedP99US)
	fmt.Printf("performance: serving %.0f qps p99 %v, shed rate %.2f at 2x capacity\n",
		serving.ThroughputQPS, time.Duration(serving.P99US)*time.Microsecond, serving.ShedRate)
	fmt.Printf("performance: kwslint %d pkgs serial %v, parallel %v (%.2fx), %d diagnostics\n",
		lint.Packages, time.Duration(lint.SerialNS), time.Duration(lint.ParallelNS), lint.Speedup, lint.Diagnostics)
	fmt.Printf("performance: observability suite %.2f%% overhead, %d slowlog exemplar(s), prom scrape %d bytes\n",
		observability.OverheadPct, observability.SlowlogCaptured, observability.PromScrapeBytes)
	return nil
}
