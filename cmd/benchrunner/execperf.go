package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"kwsearch/internal/cache"
	"kwsearch/internal/dataset"
	"kwsearch/internal/exec"
	"kwsearch/internal/invindex"
	"kwsearch/internal/obs"
)

func init() {
	register("E33", "EMBANKS/Mragyati — concurrent cached executor: worker pool vs serial CN evaluation", runE33)
}

// execQueries are the workload behind both E27 and -performance: repeated
// and distinct queries, so the result cache sees hits and the posting
// cache sees cross-query term reuse.
var execQueries = [][]string{
	{"keyword", "search"},
	{"wang", "search"},
	{"keyword", "search"}, // repeat: whole-query result-cache hit
	{"keyword", "database"},
}

func newExecExecutor() *exec.Executor {
	db := dataset.DBLP(dataset.DefaultDBLPConfig())
	return exec.New(db, invindex.FromDB(db), exec.Options{
		Workers:    4,
		FreeTables: []string{"write", "cite"},
	})
}

func runE33() error {
	x := newExecExecutor()
	q := exec.Query{Terms: []string{"keyword", "search"}, K: 10, MaxCNSize: 5}

	// Best-of, not average: under `go test ./...` other packages run
	// concurrently and an average lets one load spike flip the
	// pool-vs-serial comparison.
	tSerial := bestOf(3, func() { x.TopKSerial(q) })
	tParallel := bestOf(3, func() {
		x.InvalidateCaches()
		if _, _, err := x.TopK(context.Background(), q); err != nil {
			panic(err)
		}
	})

	serial := x.TopKSerial(q)
	x.InvalidateCaches() // report real execution stats, not a cache replay
	par, st, err := x.TopK(context.Background(), q)
	if err != nil {
		return err
	}
	fmt.Printf("   serial %-10v pool(4) %-10v  cns=%d evaluated=%d skipped=%d\n",
		tSerial, tParallel, st.CNs, st.Evaluated, st.Skipped)
	fmt.Printf("   jobs per worker %v\n", st.JobsPerWorker)
	return firstErr(
		expect(len(par) == len(serial), "pool returned %d results, serial %d", len(par), len(serial)),
		expect(len(par) == 0 || approxEqual(par[0].Score, serial[0].Score),
			"pool top-1 %v != serial top-1 %v", par[0].Score, serial[0].Score),
		expect(tParallel < tSerial, "pool (%v) not faster than serial (%v)", tParallel, tSerial),
	)
}

// cacheJSON mirrors cache.Stats with stable JSON field names.
type cacheJSON struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Stale     uint64  `json:"stale"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

func toCacheJSON(s cache.Stats) cacheJSON {
	return cacheJSON{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		Stale: s.Stale, Entries: s.Entries, HitRate: s.HitRate(),
	}
}

// execPerfJSON is the BENCH_exec.json document: wall times plus the
// efficiency counters that explain them.
type execPerfJSON struct {
	Dataset         string     `json:"dataset"`
	Workers         int        `json:"workers"`
	Queries         [][]string `json:"queries"`
	SerialNS        int64      `json:"serial_ns"`
	ParallelNS      int64      `json:"parallel_ns"`
	Speedup         float64    `json:"speedup"`
	CNs             int        `json:"cns"`
	Evaluated       uint64     `json:"evaluated"`
	Skipped         uint64     `json:"skipped"`
	PrefixReuses    uint64     `json:"prefix_reuses"`
	JobsPerWorker   []int      `json:"jobs_per_worker"`
	ResultCacheHits int        `json:"result_cache_hits"`
	PostingCache    cacheJSON  `json:"posting_cache"`
	ResultCache     cacheJSON  `json:"result_cache"`
	// Stages is the per-stage wall-time breakdown of one traced cold
	// execution of the first workload query (span-tree derived):
	// enumerate, evaluate, and the per-worker evaluate children.
	Stages []stageJSON `json:"stages"`
	// Resilience records the robustness layer's costs: deadline-carrying
	// context overhead on the pool executor and shed-decision latency
	// under a saturated admission gate (E35).
	Resilience resilienceJSON `json:"resilience"`
	// Serving records the HTTP front end's throughput, tail latency and
	// shed rate over a gated engine (E36).
	Serving servingJSON `json:"serving"`
	// Lint records the static-analysis driver's full-tree wall time,
	// serial vs parallel (see cmd/kwslint).
	Lint lintJSON `json:"kwslint"`
}

// stageJSON is one pipeline stage's share of the traced execution. Name
// is the span path from the root ("evaluate/worker-0"); Percent is the
// stage's share of the root span's wall time (children overlap their
// parents, so percentages do not sum to 100).
type stageJSON struct {
	Name    string  `json:"name"`
	NS      int64   `json:"ns"`
	Percent float64 `json:"percent"`
}

// stagesFromTrace flattens the span tree below root into stage rows.
func stagesFromTrace(root *obs.Span) []stageJSON {
	total := root.Duration()
	var out []stageJSON
	path := map[*obs.Span]string{root: ""}
	root.Walk(func(sp *obs.Span, depth int) {
		for _, c := range sp.Children() {
			if path[sp] == "" {
				path[c] = c.Name()
			} else {
				path[c] = path[sp] + "/" + c.Name()
			}
		}
		if sp == root {
			return
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(sp.Duration()) / float64(total)
		}
		out = append(out, stageJSON{Name: path[sp], NS: sp.Duration().Nanoseconds(), Percent: pct})
	})
	return out
}

// bestOf reports the fastest of n runs of f — single runs are too noisy
// on a shared box for a number recorded in the perf trajectory.
func bestOf(n int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// writeExecPerformance runs the executor workload and writes the
// efficiency report to path — the benchrunner -performance entry point.
// Timing and counter collection are separate passes: timing wants
// repeatable best-of-3 cold executions (caches invalidated), counters
// want the workload's natural cache behavior (repeats hitting).
func writeExecPerformance(path string) error {
	timing := newExecExecutor()
	var serialTotal, parallelTotal time.Duration
	for _, terms := range execQueries {
		q := exec.Query{Terms: terms, K: 10, MaxCNSize: 5, Workers: 4}
		serialTotal += bestOf(3, func() { timing.TopKSerial(q) })
		parallelTotal += bestOf(3, func() {
			timing.InvalidateCaches()
			if _, _, err := timing.TopK(context.Background(), q); err != nil {
				panic(err)
			}
		})
	}

	x := newExecExecutor()
	var lastStats exec.Stats
	resultHits := 0
	for _, terms := range execQueries {
		q := exec.Query{Terms: terms, K: 10, MaxCNSize: 5, Workers: 4}
		_, st, err := x.TopK(context.Background(), q)
		if err != nil {
			return err
		}
		if st.ResultCacheHit {
			resultHits++
		} else {
			lastStats = st
		}
	}

	// One more cold traced execution yields the per-stage breakdown.
	x.InvalidateCaches()
	root := obs.StartSpan("query")
	if _, _, err := x.TopK(context.Background(), exec.Query{
		Terms: execQueries[0], K: 10, MaxCNSize: 5, Workers: 4, Trace: root,
	}); err != nil {
		return err
	}
	root.End()

	res, err := measureResilience()
	if err != nil {
		return err
	}
	serving, err := measureServing()
	if err != nil {
		return err
	}
	lint, err := measureLint()
	if err != nil {
		return err
	}

	evaluated, skipped, reuses := x.CounterTotals()
	postings, results := x.CacheStats()
	doc := execPerfJSON{
		Dataset:         "dblp",
		Workers:         4,
		Queries:         execQueries,
		SerialNS:        serialTotal.Nanoseconds(),
		ParallelNS:      parallelTotal.Nanoseconds(),
		Speedup:         float64(serialTotal) / float64(parallelTotal),
		CNs:             lastStats.CNs,
		Evaluated:       evaluated,
		Skipped:         skipped,
		PrefixReuses:    reuses,
		JobsPerWorker:   lastStats.JobsPerWorker,
		ResultCacheHits: resultHits,
		PostingCache:    toCacheJSON(postings),
		ResultCache:     toCacheJSON(results),
		Stages:          stagesFromTrace(root),
		Resilience:      res,
		Serving:         serving,
		Lint:            lint,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("performance: serial %v, pool(4) %v (%.2fx) — wrote %s\n",
		serialTotal, parallelTotal, doc.Speedup, path)
	fmt.Printf("performance: caches postings %d/%d hits, results %d/%d hits, %d evictions\n",
		postings.Hits, postings.Hits+postings.Misses,
		results.Hits, results.Hits+results.Misses,
		postings.Evictions+results.Evictions)
	fmt.Printf("performance: ctx overhead %.1f%% (background %v vs deadline %v), shed p99 %dµs\n",
		res.CtxOverheadPct, time.Duration(res.CtxBackgroundNS), time.Duration(res.CtxDeadlineNS), res.ShedP99US)
	fmt.Printf("performance: serving %.0f qps p99 %v, shed rate %.2f at 2x capacity\n",
		serving.ThroughputQPS, time.Duration(serving.P99US)*time.Microsecond, serving.ShedRate)
	fmt.Printf("performance: kwslint %d pkgs serial %v, parallel %v (%.2fx), %d diagnostics\n",
		lint.Packages, time.Duration(lint.SerialNS), time.Duration(lint.ParallelNS), lint.Speedup, lint.Diagnostics)
	return nil
}
