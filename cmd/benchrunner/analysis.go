package main

import (
	"fmt"
	"strings"

	"kwsearch/internal/aggregate"
	"kwsearch/internal/cluster"
	"kwsearch/internal/dataset"
	"kwsearch/internal/diff"
	"kwsearch/internal/eval"
	"kwsearch/internal/lca"
	"kwsearch/internal/xmltree"
)

func init() {
	register("E10", "slides 16/164-165 — table analysis: {pool, motorcycle, american food} → (Dec,TX), (*,MI)", runE10)
	register("E11", "slides 150-153 — result differentiation: comparison table DoD", runE11)
	register("E12", "slides 108-109 — query-consistency axiom catches a broken engine", runE12)
	register("E13", "slides 161-162 — describable clustering of 'auction seller buyer Tom'", runE13)
	register("E14", "slides 166-167 — text cube top cells for 'powerful laptop'", runE14)
	register("E25", "slides 105-106 — INEX gP/AgP with tolerance-window reading", runE25)
}

func runE10() error {
	db := dataset.EventsDB()
	tbl := db.Table("event")
	cells := aggregate.MinimalGroupBys(tbl, tbl.Tuples(), []string{"month", "state"},
		[]string{"pool", "motorcycle", "american food"})
	for _, c := range cells {
		fmt.Printf("   minimal cell %s\n", c)
	}
	joined := ""
	for _, c := range cells {
		joined += c.String()
	}
	return firstErr(
		expect(len(cells) == 2, "cells = %d, want 2", len(cells)),
		expect(strings.Contains(joined, "(Dec, TX)") && strings.Contains(joined, "(*, MI)"),
			"cells = %s", joined),
	)
}

func runE11() error {
	rs := []diff.ResultFeatures{
		{Name: "ICDE 2000", Features: []diff.Feature{
			{Type: "conf:year", Value: "2000"},
			{Type: "paper:title", Value: "OLAP"},
			{Type: "paper:title", Value: "data mining"},
			{Type: "paper:title", Value: "query"},
			{Type: "author:country", Value: "USA"},
		}},
		{Name: "ICDE 2010", Features: []diff.Feature{
			{Type: "conf:year", Value: "2010"},
			{Type: "paper:title", Value: "cloud"},
			{Type: "paper:title", Value: "scalability"},
			{Type: "paper:title", Value: "query"},
			{Type: "author:country", Value: "USA"},
		}},
	}
	slideTable := diff.Table{Selected: [][]diff.Feature{
		{{Type: "conf:year", Value: "2000"}, {Type: "paper:title", Value: "OLAP"}, {Type: "paper:title", Value: "data mining"}},
		{{Type: "conf:year", Value: "2010"}, {Type: "paper:title", Value: "cloud"}, {Type: "paper:title", Value: "scalability"}},
	}}
	weak := diff.WeakLocalOptimal(rs, 3)
	strong := diff.StrongLocalOptimal(rs, 3)
	opt := diff.Exhaustive(rs, 3)
	fmt.Printf("   DoD: slide table=%d  weak=%d  strong=%d  optimum=%d\n",
		diff.DoD(slideTable), diff.DoD(weak), diff.DoD(strong), diff.DoD(opt))
	return firstErr(
		expect(diff.DoD(slideTable) == 2, "slide table DoD = %d, want 2", diff.DoD(slideTable)),
		expect(diff.DoD(strong) == diff.DoD(opt), "strong local optimum %d below optimum %d",
			diff.DoD(strong), diff.DoD(opt)),
	)
}

func runE12() error {
	ix := xmltree.NewIndex(dataset.ConfDemoXML())
	slca := func(ix *xmltree.Index, terms []string) []*xmltree.Node {
		return lca.SLCA(ix, terms)
	}
	broken := func(ix2 *xmltree.Index, terms []string) []*xmltree.Node {
		if len(terms) >= 3 {
			return ix2.Tree().NodesByLabel("demo")
		}
		return lca.SLCA(ix2, terms)
	}
	vGood := eval.CheckQueryConsistency(slca, ix, []string{"paper", "mark"}, "sigmod")
	vBad := eval.CheckQueryConsistency(broken, ix, []string{"paper", "mark"}, "sigmod")
	fmt.Printf("   SLCA violations: %d; broken-engine violations: %d\n", len(vGood), len(vBad))
	for _, v := range vBad {
		fmt.Printf("   caught: %s — %s\n", v.Axiom, v.Detail)
	}
	return firstErr(
		expect(len(vGood) == 0, "SLCA violated consistency: %v", vGood),
		expect(len(vBad) > 0, "broken engine not caught"),
	)
}

func runE13() error {
	tr := dataset.AuctionsXML()
	var rs []cluster.Result
	for _, n := range tr.Root.Children {
		rs = append(rs, cluster.Result{Root: n})
	}
	clusters := cluster.ByRole(rs, []string{"auction", "seller", "buyer", "tom"})
	for _, c := range clusters {
		fmt.Printf("   %s\n", cluster.Describe(c))
	}
	if len(clusters) != 3 {
		return fmt.Errorf("clusters = %d, want 3 roles", len(clusters))
	}
	sub := cluster.SplitByContext(clusters[0], 0)
	for _, c := range sub {
		fmt.Printf("   split: %s\n", cluster.Describe(c))
	}
	return expect(len(sub) == 2, "seller cluster splits into %d contexts, want 2", len(sub))
}

func runE14() error {
	var docs []aggregate.Doc
	for _, r := range dataset.Laptops() {
		docs = append(docs, aggregate.Doc{
			Dims: map[string]string{"Brand": r.Brand, "Model": r.Model, "CPU": r.CPU, "OS": r.OS},
			Text: r.Description,
		})
	}
	cells := aggregate.TopCells(docs, []string{"Brand", "Model", "CPU", "OS"},
		[]string{"powerful", "laptop"}, 2, 5)
	joined := ""
	for _, c := range cells {
		fmt.Printf("   cell {%s} support=%d relevance=%.2f\n", c, c.Support, c.Relevance)
		joined += c.String() + "|"
	}
	return firstErr(
		expect(strings.Contains(joined, "CPU:1.7GHz"), "missing CPU:1.7GHz cell"),
		expect(strings.Contains(joined, "Brand:Acer") || strings.Contains(joined, "Model:AOA110"),
			"missing Acer/AOA110 cell"),
	)
}

func runE25() error {
	b := xmltree.NewBuilder("doc")
	r := b.Root()
	s1 := b.Child(r, "sec", "relevant passage here")
	s2 := b.Child(r, "sec", "irrelevant filler text")
	s3 := b.Child(r, "sec", "another relevant bit")
	tr := b.Freeze()
	relevant := map[xmltree.NodeID]bool{s1.ID: true, s3.ID: true}
	scored := eval.JudgeResults([]*xmltree.Node{s1, s2, s3}, relevant, tr)
	fmt.Printf("   gP(1)=%.3f gP(2)=%.3f gP(3)=%.3f AgP=%.3f\n",
		eval.GP(scored, 1), eval.GP(scored, 2), eval.GP(scored, 3), eval.AgP(scored))
	cut := eval.TruncateAtTolerance(
		eval.JudgeResults([]*xmltree.Node{s2, s1, s3}, relevant, tr), 1)
	fmt.Printf("   tolerance-1 reading stops after %d result(s)\n", len(cut))
	return firstErr(
		expect(eval.GP(scored, 1) > eval.GP(scored, 2), "gP must drop after the irrelevant result"),
		expect(len(cut) == 1, "tolerance window = %d, want 1", len(cut)),
	)
}
