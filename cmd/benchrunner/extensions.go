package main

import (
	"fmt"

	"kwsearch/internal/community"
	"kwsearch/internal/datagraph"
	"kwsearch/internal/dataset"
	"kwsearch/internal/forms"
	"kwsearch/internal/interp"
	"kwsearch/internal/invindex"
	"kwsearch/internal/reach"
	"kwsearch/internal/schemagraph"
	"kwsearch/internal/stream"
	"kwsearch/internal/xmltree"
	"kwsearch/internal/xpathgen"

	"kwsearch/internal/cn"
)

func init() {
	register("E27", "slides 44-46 — structured-query interpretation: bindings + template priors", runE27)
	register("E28", "slides 31, 126-128 — distinct-core communities and the EASE pair index", runE28)
	register("E29", "slides 26, 64 — QUnits: materialize semantic units, retrieve by keywords", runE29)
	register("E30", "slide 134 — keyword search over relational streams: exactly-once mesh emission", runE30)
	register("E31", "slides 47-48 — probabilistic XPath generation from keywords", runE31)
	register("E32", "slide 124 — D-reachability indexes prune hopeless seeds", runE32)
}

func runE27() error {
	db := dataset.WidomBib()
	in := interp.New(db, nil)
	its := in.Interpret("widom xml", 3)
	for _, it := range its {
		fmt.Printf("   %s\n", it)
	}
	if len(its) == 0 {
		return fmt.Errorf("no interpretations")
	}
	top := its[0]
	bound := map[string]string{}
	for _, b := range top.Bindings {
		bound[b.Keyword] = b.Table + "." + b.Column
	}
	if err := expect(bound["widom"] == "author.name" && bound["xml"] == "paper.title",
		"top bindings = %v", bound); err != nil {
		return err
	}
	// A log favouring the paper-only template reorders single-keyword
	// interpretations (slide 46: probabilities from the query log).
	withLog := interp.New(db, []interp.LogEntry{
		{Template: "paper", Bound: [][2]string{{"paper", "title"}}, Count: 9},
	})
	its2 := withLog.Interpret("xml", 1)
	return expect(len(its2) == 1 && its2[0].Template() == "paper",
		"log-informed interpretation = %v", its2)
}

func runE28() error {
	db := dataset.SeltzerBerkeley()
	ix := invindex.FromDB(db)
	g := datagraph.FromDB(db, nil)
	groups := [][]datagraph.NodeID{}
	terms := []string{"seltzer", "berkeley"}
	matches := map[string][]datagraph.NodeID{}
	for _, t := range terms {
		var grp []datagraph.NodeID
		for _, d := range ix.Docs(t) {
			grp = append(grp, datagraph.NodeID(d))
		}
		groups = append(groups, grp)
		matches[t] = grp
	}
	comms := community.DistinctCore(g, groups, 3, 0)
	for _, c := range comms {
		fmt.Printf("   core %v: %d centers, cost %.0f\n", c.Core, len(c.Centers), c.Cost)
	}
	if err := expect(len(comms) == 2,
		"want 2 distinct cores (Seltzer×{university, project}), got %d", len(comms)); err != nil {
		return err
	}
	pix := community.BuildPairIndex(g, matches, 3)
	centers := pix.Lookup("seltzer", "berkeley")
	fmt.Printf("   EASE pair index: %d entries; (seltzer,berkeley) -> %d centers, best sim %.2f\n",
		pix.Entries(), len(centers), centers[0].Sim)
	return expect(len(centers) > 0, "pair index missing the term pair")
}

func runE29() error {
	db := dataset.WidomBib()
	g := schemagraph.FromDB(db)
	f := &forms.Form{Tables: []string{"author", "paper", "write"}}
	units := forms.MaterializeQUnits(db, g, f, 0)
	hits := forms.SearchQUnits(units, []string{"widom", "xml"}, 3)
	fmt.Printf("   materialized %d author-paper units; 'widom xml' retrieves %d\n",
		len(units), len(hits))
	for _, h := range hits {
		fmt.Printf("   %.2f  %s\n", h.Score, h.QUnit.Text)
	}
	return firstErr(
		expect(len(units) == 6, "units = %d, want 6", len(units)),
		expect(len(hits) == 1, "hits = %d, want 1", len(hits)),
	)
}

func runE30() error {
	db := dataset.WidomBib()
	ix := invindex.FromDB(db)
	terms := []string{"widom", "xml"}
	ev := cn.NewEvaluator(db, ix, terms)
	g := schemagraph.FromDB(db)
	cns := cn.Enumerate(g, cn.EnumerateOptions{
		MaxSize:       5,
		KeywordTables: ev.KeywordTables(),
		FreeTables:    []string{"write"},
	})
	batch := 0
	for _, c := range cns {
		batch += len(ev.EvaluateCN(c))
	}
	m := stream.NewMesh(db, terms, cns)
	emitted := 0
	for _, name := range db.TableNames() {
		for _, tp := range db.Table(name).Tuples() {
			emitted += len(m.Arrive(tp))
		}
	}
	fmt.Printf("   %d CNs armed; streamed %d tuples; emitted %d results (batch: %d)\n",
		len(cns), m.Seen(), emitted, batch)
	return expect(emitted == batch, "stream emitted %d, batch %d", emitted, batch)
}

func runE31() error {
	// The slide 47-48 pipeline: bindings → operators → valid scored XPath.
	b := xmltree.NewBuilder("bib")
	conf := b.Child(b.Root(), "conf", "")
	for _, row := range [][2]string{{"XML streams", "Widom"}, {"XML views", "Widom"}, {"Datalog", "Ullman"}} {
		p := b.Child(conf, "paper", "")
		b.Child(p, "title", row[0])
		b.Child(p, "author", row[1])
	}
	tr := b.Freeze()
	got := xpathgen.Generate(tr, []string{"widom", "xml"}, 3)
	for _, sc := range got {
		fmt.Printf("   %.4f  %s  (%d results)\n", sc.Prob, sc.Query, len(sc.Results))
	}
	if err := expect(len(got) > 0, "no queries generated"); err != nil {
		return err
	}
	return expect(got[0].Query.Target == "paper",
		"top target = %s, want paper (IG prefers the discriminating element)", got[0].Query.Target)
}

func runE32() error {
	db := dataset.SeltzerBerkeley()
	g := datagraph.FromDB(db, nil)
	ix := invindex.FromDB(db)
	rix := reach.Build(db, g, 1)
	terms := []string{"seltzer", "berkeley"}
	groups := make([][]datagraph.NodeID, len(terms))
	for i, term := range terms {
		for _, d := range ix.Docs(term) {
			groups[i] = append(groups[i], datagraph.NodeID(d))
		}
	}
	pruned, n := rix.PruneSeeds(groups, terms)
	fmt.Printf("   D=1 index (%d entries) pruned %d of %d seeds before any expansion\n",
		rix.Entries(), n, len(groups[0])+len(groups[1]))
	return firstErr(
		expect(n > 0, "nothing pruned"),
		expect(len(pruned[0]) > 0 && len(pruned[1]) > 0, "over-pruned: %v", pruned),
	)
}
