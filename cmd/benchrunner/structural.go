package main

import (
	"fmt"
	"math"
	"strings"

	"kwsearch/internal/banks"
	"kwsearch/internal/cn"
	"kwsearch/internal/datagraph"
	"kwsearch/internal/dataset"
	"kwsearch/internal/invindex"
	"kwsearch/internal/lca"
	"kwsearch/internal/ntc"
	"kwsearch/internal/relstore"
	"kwsearch/internal/schemagraph"
	"kwsearch/internal/steiner"
	"kwsearch/internal/xmltree"
	"kwsearch/internal/xreal"
	"kwsearch/internal/xseek"
)

func init() {
	register("E1", "slide 7 — 'Seltzer, Berkeley' assembled across relations", runE1)
	register("E2", "slide 28 — candidate networks for Q = 'Widom XML' on A-W-P", runE2)
	register("E3", "slide 30 — group Steiner tree a(b(c,d)) costs 10 vs star 13", runE3)
	register("E4", "slides 32-33 — CA vs SLCA pruning on the conf tree", runE4)
	register("E5", "slides 42-43 — NTC entropies H(A)=2.25 H(P)=1.92 I=1.59; I(E,P)=1.0", runE5)
	register("E6", "slide 52 — Précis path weight 0.36 < 0.4 excludes sponsor", runE6)
	register("E26", "slides 37-38 — XReal return type: conf/paper > journal/paper > phdthesis", runE26)
}

func runE1() error {
	db := dataset.SeltzerBerkeley()
	ix := invindex.FromDB(db)
	g := datagraph.FromDB(db, nil)
	groups := [][]datagraph.NodeID{}
	for _, term := range []string{"seltzer", "berkeley"} {
		var grp []datagraph.NodeID
		for _, d := range ix.Docs(term) {
			grp = append(grp, datagraph.NodeID(d))
		}
		groups = append(groups, grp)
	}
	answers, _ := banks.BackwardSearch(g, groups, banks.Options{K: 3})
	for _, a := range answers {
		root := db.TupleByID(int32AsTupleID(a.Root))
		fmt.Printf("   cost %.0f  root %s#%d  matches:", a.Cost, root.Table, root.ID)
		for _, m := range a.Matches {
			mt := db.TupleByID(int32AsTupleID(m))
			fmt.Printf(" %s#%d", mt.Table, mt.ID)
		}
		fmt.Println()
	}
	return firstErr(
		expect(len(answers) >= 2, "want >=2 assemblies, got %d", len(answers)),
		expect(len(answers) > 0 && answers[0].Cost == 1, "best assembly cost = %v, want 1", answers[0].Cost),
	)
}

func runE2() error {
	g, err := schemagraph.New(
		[]string{"author", "write", "paper"},
		[]schemagraph.Edge{
			{From: "write", FromCol: "aid", To: "author", ToCol: "aid"},
			{From: "write", FromCol: "pid", To: "paper", ToCol: "pid"},
		})
	if err != nil {
		return err
	}
	cns := cn.Enumerate(g, cn.EnumerateOptions{
		MaxSize:       5,
		KeywordTables: []string{"author", "paper"},
		FreeTables:    []string{"write"},
	})
	for i, c := range cns {
		fmt.Printf("   CN %d (size %d): %s\n", i+1, c.Size(), c)
	}
	return expect(len(cns) == 5, "want the slide's 5 CNs, got %d", len(cns))
}

func runE3() error {
	g := datagraph.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 2)
	g.AddEdge(1, 3, 3)
	g.AddEdge(0, 2, 6)
	g.AddEdge(0, 3, 7)
	tree, ok := steiner.GroupSteiner(g, [][]datagraph.NodeID{{0}, {2}, {3}})
	if !ok {
		return fmt.Errorf("no GST")
	}
	fmt.Printf("   GST cost = %.0f (paper: 10), star a(c,d) = 13, edges = %v\n", tree.Cost, tree.Edges)
	return expect(tree.Cost == 10, "GST cost = %v, want 10", tree.Cost)
}

func runE4() error {
	ix := xmltree.NewIndex(dataset.ConfXML())
	terms := []string{"keyword", "mark"}
	cas := lca.CommonAncestors(ix, terms)
	slcas := lca.SLCA(ix, terms)
	fmt.Printf("   CAs:  %s\n", nodeLabels(cas))
	fmt.Printf("   SLCA: %s\n", nodeLabels(slcas))
	return firstErr(
		expect(len(cas) == 2, "CAs = %d, want 2 (conf, paper)", len(cas)),
		expect(len(slcas) == 1 && slcas[0].Label == "paper", "SLCA = %v, want the keyword paper", nodeLabels(slcas)),
	)
}

func nodeLabels(ns []*xmltree.Node) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = fmt.Sprintf("%s(%s)", n.Label, n.Dewey)
	}
	return strings.Join(parts, " ")
}

func runE5() error {
	ap := ntc.NewJoint(2)
	ap.Add("A1", "P1")
	ap.Add("A2", "P1")
	ap.Add("A3", "P2")
	ap.Add("A4", "P2")
	ap.Add("A5", "P3")
	ap.Add("A5", "P4")
	ep := ntc.NewJoint(2)
	ep.Add("E1", "P1")
	ep.Add("E2", "P2")
	fmt.Printf("   author-paper: H(A)=%.2f H(P)=%.2f H(A,P)=%.2f I=%.2f I*=%.2f\n",
		ap.MarginalEntropy(0), ap.MarginalEntropy(1), ap.JointEntropy(),
		ap.TotalCorrelation(), ap.NormalizedTotalCorrelation())
	fmt.Printf("   editor-paper: H(E)=%.2f H(P)=%.2f H(E,P)=%.2f I=%.2f I*=%.2f\n",
		ep.MarginalEntropy(0), ep.MarginalEntropy(1), ep.JointEntropy(),
		ep.TotalCorrelation(), ep.NormalizedTotalCorrelation())
	near := func(got, want float64) bool { return math.Abs(got-want) < 0.01 }
	return firstErr(
		expect(near(ap.MarginalEntropy(0), 2.25), "H(A) = %v", ap.MarginalEntropy(0)),
		expect(near(ap.MarginalEntropy(1), 1.92), "H(P) = %v", ap.MarginalEntropy(1)),
		expect(near(ap.JointEntropy(), 2.58), "H(A,P) = %v", ap.JointEntropy()),
		expect(near(ap.TotalCorrelation(), 1.59), "I(A,P) = %v", ap.TotalCorrelation()),
		expect(near(ep.TotalCorrelation(), 1.00), "I(E,P) = %v", ep.TotalCorrelation()),
	)
}

func runE6() error {
	g, err := schemagraph.New(
		[]string{"person", "review", "conference", "sponsor"},
		[]schemagraph.Edge{
			{From: "person", To: "review", Weight: 0.8},
			{From: "review", To: "conference", Weight: 0.9},
			{From: "conference", To: "sponsor", Weight: 0.5},
		})
	if err != nil {
		return err
	}
	w := g.PathWeight([]string{"person", "review", "conference", "sponsor"})
	schema := xseek.PrecisSchema(g, "person", 0.4, 0)
	fmt.Printf("   path weight person→…→sponsor = %.2f (paper: 0.36); schema@0.4 = %v\n", w, schema)
	return firstErr(
		expect(math.Abs(w-0.36) < 1e-9, "weight = %v, want 0.36", w),
		expect(len(schema) == 3, "schema = %v, want sponsor excluded", schema),
	)
}

func runE26() error {
	b := xmltree.NewBuilder("bib")
	conf := b.Child(b.Root(), "conf", "")
	for _, ti := range []string{"XML streams", "XML views", "Datalog"} {
		p := b.Child(conf, "paper", "")
		b.Child(p, "title", ti)
		if strings.Contains(ti, "XML") {
			b.Child(p, "author", "Widom")
		} else {
			b.Child(p, "author", "Ullman")
		}
	}
	j := b.Child(b.Root(), "journal", "")
	p := b.Child(j, "paper", "")
	b.Child(p, "title", "XML integration")
	b.Child(p, "author", "Widom")
	th := b.Child(b.Root(), "phdthesis", "")
	tp := b.Child(th, "paper", "")
	b.Child(tp, "title", "Storage managers")
	b.Child(tp, "author", "Widom")

	ix := xmltree.NewIndex(b.Freeze())
	types := xreal.InferReturnType(ix, []string{"widom", "xml"}, xreal.DefaultOptions())
	scores := map[string]float64{}
	for _, t := range types {
		fmt.Printf("   %-22s %.3f\n", t.Path, t.Score)
		scores[t.Path] = t.Score
	}
	_, phd := scores["/bib/phdthesis/paper"]
	return firstErr(
		expect(scores["/bib/conf/paper"] > scores["/bib/journal/paper"],
			"conf/paper must outrank journal/paper"),
		expect(!phd, "phdthesis/paper must score 0 (omitted)"),
	)
}

func int32AsTupleID(n datagraph.NodeID) relstore.TupleID { return relstore.TupleID(n) }
