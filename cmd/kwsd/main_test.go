package main

// End-to-end tests for the daemon binary: they build kwsd with the go
// tool, run it as a real process, and exercise the contracts only a
// process boundary can prove — SIGTERM drains cleanly to exit 0, and
// -selfcheck passes against a live loopback server.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildKwsd compiles the daemon once per test binary into a temp dir.
func buildKwsd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "kwsd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build kwsd: %v\n%s", err, out)
	}
	return bin
}

// waitServing polls stderr output until the daemon prints its serving
// line, returning the address it bound.
func waitServing(t *testing.T, stderr *safeBuffer) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(stderr.String(), "\n") {
			if i := strings.Index(line, "http://"); i >= 0 && strings.Contains(line, "serving") {
				return strings.Fields(line[i:])[0]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("kwsd never reported serving; stderr:\n%s", stderr.String())
	return ""
}

// safeBuffer is a bytes.Buffer safe to read while the process writes.
type safeBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *safeBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSIGTERMDrainsAndExitsZero starts kwsd, verifies it serves, sends
// SIGTERM and requires a clean exit 0 with the drain messages on stderr.
func TestSIGTERMDrainsAndExitsZero(t *testing.T) {
	bin := buildKwsd(t)
	var stderr safeBuffer
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0")
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	base := waitServing(t, &stderr)

	// The daemon must actually answer before we tear it down.
	resp, err := http.Post(base+"/query", "application/json",
		strings.NewReader(`{"query": "keyword search", "k": 3}`))
	if err != nil {
		t.Fatalf("POST /query against live daemon: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live daemon: status %d body %s", resp.StatusCode, body)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("kwsd exited non-zero after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("kwsd did not exit within 30s of SIGTERM\nstderr:\n%s", stderr.String())
	}
	if out := stderr.String(); !strings.Contains(out, "drained cleanly") {
		t.Fatalf("drain message missing from stderr:\n%s", out)
	}
}

// TestSelfCheckBinary runs `kwsd -selfcheck` as a process and requires
// exit 0 plus a zero-mismatch report line on stdout.
func TestSelfCheckBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("selfcheck drives a full load-generation run")
	}
	bin := buildKwsd(t)
	cmd := exec.Command(bin, "-selfcheck", "-clients", "4", "-per-client", "4")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("kwsd -selfcheck failed: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "mismatches=0") {
		t.Fatalf("selfcheck report missing mismatches=0:\n%s", stdout.String())
	}
}

// TestUnknownDatasetUsageError pins the usage-error exit code.
func TestUnknownDatasetUsageError(t *testing.T) {
	bin := buildKwsd(t)
	err := exec.Command(bin, "-data", "nope", "-selfcheck").Run()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 2 {
		t.Fatalf("unknown dataset: err %v, want exit code 2", err)
	}
}

func TestMain(m *testing.M) {
	// The e2e tests shell out to the go tool; skip everything cleanly if
	// it is unavailable (it always is in this repo's CI).
	if _, err := exec.LookPath("go"); err != nil {
		fmt.Fprintln(os.Stderr, "skipping kwsd e2e tests: go tool not found")
		os.Exit(0)
	}
	os.Exit(m.Run())
}
