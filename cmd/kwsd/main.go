// Command kwsd is the keyword-search daemon: it loads one built-in
// dataset into a warm engine and serves it over HTTP.
//
//	kwsd -addr :8791 -data dblp -admit 8 -admit-queue 16
//	kwsd -addr :8791 -data dblp -shards 4
//
// Endpoints:
//
//	POST /query          one query        {"query": "keyword search", "k": 5, ...}
//	POST /batch          up to 64 queries {"queries": [...]}
//	GET  /healthz        200 while serving, 503 once draining
//	GET  /readyz         readiness probe; 503 the instant a drain begins
//	GET  /metrics        metrics-registry snapshot (JSON, windows and SLO burn included)
//	GET  /metrics/prom   Prometheus 0.0.4 text exposition of the same snapshot
//	GET  /debug/slowlog  tail-sampled slow/errored/shed query exemplars with span trees
//	                     (also /debug/vars, /debug/pprof)
//
// Observability is tuned with -log-level (structured JSON lines on
// stderr, request ids joining access log, engine lines and exemplars),
// -slowlog-ms (capture threshold) and -slowlog-cap (exemplar ring
// size).
//
// Status codes follow the engine's typed errors: 400 bad query, 429 shed
// by admission control (Retry-After set), 503 deadline expired while
// queued, and 200 with "partial": true when a per-request deadline
// expires mid-evaluation (the certified prefix computed so far).
//
// SIGTERM or SIGINT starts a graceful drain: the listener stops
// accepting, in-flight queries run to completion within -drain, and the
// process exits 0 (1 if the drain deadline forced a hard close).
//
// -selfcheck starts the daemon on a loopback port, drives it with the
// built-in load generator (concurrent clients whose served answers must
// be byte-identical to in-process Engine.Query, a deadline probe that
// must yield a certified partial, and an overload burst that must shed
// with 429), prints the report and exits 0 only if every check passed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kwsearch/internal/core"
	"kwsearch/internal/dataset"
	"kwsearch/internal/obs"
	"kwsearch/internal/server"
	"kwsearch/internal/shard"
)

// buildLogger maps the -log-level flag onto a stderr structured logger;
// "off" disables logging entirely (a nil obs.Logger no-ops).
func buildLogger(level string) (*obs.Logger, error) {
	if level == "off" || level == "none" {
		return nil, nil
	}
	lv, err := obs.ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return obs.NewLogger(os.Stderr, lv), nil
}

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:8791", "listen address")
	data := flag.String("data", "dblp", "dataset: dblp | widom | seltzer | products | events | auctions | conf | bib")
	admit := flag.Int("admit", 8, "admission-control concurrency limit (0 = off)")
	admitQueue := flag.Int("admit-queue", 16, "bounded admission queue depth used with -admit")
	workers := flag.Int("workers", 1, "default worker-pool size for queries that don't set one")
	shards := flag.Int("shards", 0, "shard the engine N ways and serve through the scatter-gather coordinator (0/1 = single engine; relational datasets only)")
	deadline := flag.Duration("deadline", 0, "default per-query time budget for queries that don't set one (0 = none)")
	maxDeadline := flag.Duration("max-deadline", time.Minute, "ceiling clamped onto any requested per-query deadline (0 = no ceiling)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-drain budget after SIGTERM/SIGINT")
	selfcheck := flag.Bool("selfcheck", false, "serve on a loopback port, drive the built-in load generator against it, report, and exit")
	clients := flag.Int("clients", 8, "selfcheck: concurrent clients")
	perClient := flag.Int("per-client", 10, "selfcheck: queries per client")
	logLevel := flag.String("log-level", "info", "structured-log level: debug | info | warn | error | off")
	slowlogMS := flag.Int("slowlog-ms", 100, "slow-query capture threshold in ms (0 disables the duration trigger; errored/shed/partial queries are always captured)")
	slowlogCap := flag.Int("slowlog-cap", 64, "slow-query exemplar ring capacity (0 disables tail sampling entirely)")
	flag.Parse()

	engine, err := buildEngine(*data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// The serving seam is core.Searcher: a bare engine, or the
	// scatter-gather coordinator over N shard views of it.
	var searcher core.Searcher = engine
	if *shards > 1 {
		coord, err := shard.New(engine, shard.Options{Shards: *shards})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		searcher = coord
	}
	if *admit > 0 {
		searcher.Admit(*admit, *admitQueue)
	}
	logger, err := buildLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var slowlog *obs.SlowLog
	if *slowlogCap > 0 {
		slowlog = obs.NewSlowLog(*slowlogCap, time.Duration(*slowlogMS)*time.Millisecond)
	}
	srv := server.New(searcher, server.Options{
		DefaultWorkers:  *workers,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		Logger:          logger,
		SlowLog:         slowlog,
	})

	if *selfcheck {
		return runSelfCheck(srv, searcher, *clients, *perClient)
	}

	if err := srv.Start(*addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *shards > 1 {
		fmt.Fprintf(os.Stderr, "kwsd: serving %s over %d shards on http://%s (POST /query, /batch; GET /healthz, /metrics)\n", *data, *shards, srv.Addr())
	} else {
		fmt.Fprintf(os.Stderr, "kwsd: serving %s on http://%s (POST /query, /batch; GET /healthz, /metrics)\n", *data, srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	fmt.Fprintf(os.Stderr, "kwsd: %s received, draining (budget %s)\n", s, *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "kwsd: drain incomplete, hard-closed: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "kwsd: drained cleanly")
	return 0
}

// runSelfCheck serves on a loopback port and turns the load generator
// loose on it. The serving engine is shared with the in-process
// reference path on purpose: identical index, identical caches, so any
// result divergence is the serving layer's fault.
func runSelfCheck(srv *server.Server, engine core.Searcher, clients, perClient int) int {
	if err := srv.Start("127.0.0.1:0"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "kwsd: selfcheck against http://%s\n", srv.Addr())
	report, err := server.SelfCheck(context.Background(), "http://"+srv.Addr(), engine, server.SelfCheckConfig{
		Clients:   clients,
		PerClient: perClient,
	})
	fmt.Println(report)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if derr := srv.Drain(ctx); derr != nil {
		fmt.Fprintf(os.Stderr, "kwsd: post-selfcheck drain: %v\n", derr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "kwsd: selfcheck FAILED: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "kwsd: selfcheck passed")
	return 0
}

func buildEngine(data string) (*core.Engine, error) {
	switch data {
	case "dblp":
		return core.NewRelational(dataset.DBLP(dataset.DefaultDBLPConfig())), nil
	case "widom":
		return core.NewRelational(dataset.WidomBib()), nil
	case "seltzer":
		return core.NewRelational(dataset.SeltzerBerkeley()), nil
	case "products":
		return core.NewRelational(dataset.Products()), nil
	case "events":
		return core.NewRelational(dataset.EventsDB()), nil
	case "auctions":
		return core.NewXML(dataset.AuctionsXML()), nil
	case "conf":
		return core.NewXML(dataset.ConfDemoXML()), nil
	case "bib":
		return core.NewXML(dataset.BibXML(dataset.DefaultBibConfig())), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", data)
}
