#!/usr/bin/env bash
# verify.sh — the canonical tier-1 entry point: everything CI (and a
# human before pushing) runs, in dependency order. Exits non-zero on the
# first failure.
#
#   ./verify.sh          # full verification
#   ./verify.sh -short   # skip the -race stress tests' slow bodies
set -euo pipefail
cd "$(dirname "$0")"

short=""
if [[ "${1:-}" == "-short" ]]; then
    short="-short"
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test $short ./...

echo "==> go test -race (concurrency-bearing packages)"
go test -race $short ./internal/parallel/... ./internal/stream/... ./internal/cn/... \
    ./internal/cache/... ./internal/exec/... ./internal/lca/... ./internal/obs/... \
    ./internal/resilience/... ./internal/core/... ./internal/server/... \
    ./internal/analysis/... ./internal/plan/... ./internal/shard/...

echo "==> observability overhead gate (E38 budget: 5%)"
go run ./cmd/benchrunner -obs-overhead

echo "==> warm bind share gate (E39 budget: 35%)"
go run ./cmd/benchrunner -bind-gate

echo "==> shard identity gate (E40: coordinator answers byte-identical to single engine)"
go run ./cmd/benchrunner -shard-gate

echo "==> kwslint -json ./... (report: kwslint.json)"
go run ./cmd/kwslint -json ./... > kwslint.json

echo "verify: OK"
